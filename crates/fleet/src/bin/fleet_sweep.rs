//! Population-scale USTA sweep CLI.
//!
//! The aggregate report goes to **stdout** and never mentions the
//! thread count, so `--threads 1` and `--threads 4` runs of the same
//! sweep emit bit-identical bytes (CI diffs them). Progress and timing
//! go to stderr: a rate-limited progress line driven by the
//! `fleet.triples` telemetry counter, silenced by `--quiet`.
//!
//! `--metrics-json` and `--chrome-trace` export the run's telemetry —
//! the metrics file splits deterministic work counters (bit-identical
//! at any `--threads`) from wall-clock timings (reported, never
//! compared), and the trace file loads in `chrome://tracing` or
//! Perfetto.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use usta_fleet::{run_sweep, target_percentile, GridAxes, ScenarioCatalog, SweepConfig};

/// The help text, with the device list taken from the live *merged*
/// registry (built-ins plus any `--catalog` installs) so catalog
/// growth never goes stale here.
fn usage() -> String {
    format!(
        "\
fleet_sweep — population-scale USTA simulation sweep

USAGE:
    fleet_sweep [OPTIONS]

OPTIONS:
    --users N          sampled users                      [default: 100]
    --scenarios N      scenarios sampled from the grid    [default: 4]
    --threads N        worker threads (never changes results) [default: 1]
    --seed N           run seed                           [default: 42]
    --governor NAME    baseline governor                  [default: ondemand]
    --device LIST      comma-separated device ids, or \"all\" [default: nexus4]
                       (known: {})
    --catalog DIR      load device/grid catalog files (*.toml) from DIR and
                       merge them over the built-in registry — file entries
                       override same-id built-ins, new ids append
    --grid NAME        sample scenarios from the named catalog grid's axes
                       instead of the full paper grid (needs --catalog)
    --list-devices     print the merged device registry and exit
    --list-scenarios   print the scenario catalogs and loaded grids and exit
    --trace-dir DIR    write a per-triple CSV summary (triples.csv) to DIR,
                       plus triaged flight recordings (flight-<index>.json)
                       and the worst-triples table in the report
    --trace-steps N    also write the first N triples' full step traces
                       (steps-<index>.csv, per-domain freq columns) to DIR
    --flight-windows N flight-recorder ring capacity per triple (governor
                       windows kept for triage; 0 disables) [default: 512]
    --triage-over F    dump a triple's recording when its time-over-limit
                       fraction reaches F                  [default: 0.02]
    --metrics-json PATH  write the telemetry registry (deterministic
                       counters + wall-clock timings) as JSON to PATH
    --metrics-prom PATH  write the registry in Prometheus/OpenMetrics
                       text exposition format to PATH
    --chrome-trace PATH  write the span trace as Chrome trace-event JSON
                       (open in chrome://tracing or Perfetto) to PATH
    --target-p99-over F  bisect the policy-limit population percentile for
                       the laxest setting whose fleet p99 time-over-limit
                       stays <= F; prints the probe trajectory, then the
                       report at the chosen percentile (deterministic at
                       any --threads)
    --target-iters N   bisection rounds for --target-p99-over [default: 7]
    --quiet            no stderr progress line
    --no-usta          sweep the bare baseline (no USTA wrap)
    --sim-seconds F    per-triple simulated-time cap      [default: 180]
    --smoke            CI preset: ~100 short triples per device, small training
    --help             print this help
",
        usta_device::merged_ids().join(", ")
    )
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

/// Everything parsed from argv: the sweep itself plus the CLI-only
/// telemetry/export knobs.
struct CliOptions {
    config: SweepConfig,
    quiet: bool,
    list_devices: bool,
    list_scenarios: bool,
    /// The last `--catalog` directory's parse, kept for `--grid`
    /// resolution and the `--list-scenarios` grid listing (its devices
    /// are already installed into the process-wide registry).
    catalog: usta_catalog::Catalog,
    metrics_json: Option<std::path::PathBuf>,
    metrics_prom: Option<std::path::PathBuf>,
    chrome_trace: Option<std::path::PathBuf>,
    /// `--target-p99-over` budget: switch from a single sweep to the
    /// percentile-targeting bisection.
    target_p99_over: Option<f64>,
    /// Bisection rounds for `--target-p99-over`.
    target_iters: usize,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut args = std::env::args();
    let _argv0 = args.next();
    // First pass collects flags; --smoke swaps the base preset, and any
    // explicit flag overrides it regardless of order.
    let mut smoke = false;
    let mut overrides: Vec<(String, String)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-usta" => overrides.push(("no-usta".into(), String::new())),
            "--quiet" => overrides.push(("quiet".into(), String::new())),
            "--list-devices" => overrides.push(("list-devices".into(), String::new())),
            "--list-scenarios" => overrides.push(("list-scenarios".into(), String::new())),
            "--help" | "-h" => return Err(String::new()),
            "--users" | "--scenarios" | "--threads" | "--seed" | "--governor" | "--sim-seconds"
            | "--device" | "--catalog" | "--grid" | "--trace-dir" | "--trace-steps"
            | "--flight-windows" | "--triage-over" | "--metrics-json" | "--metrics-prom"
            | "--chrome-trace" | "--target-p99-over" | "--target-iters" => {
                let value = args.next().ok_or_else(|| format!("{arg} needs a value"))?;
                overrides.push((arg, value));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    // Catalogs install into the process-wide merged registry before any
    // other flag resolves, so `--device all` expansion, unknown-device
    // listings, and the help text see the merged set regardless of
    // where `--catalog` sits on the command line.
    let mut catalog = usta_catalog::Catalog::default();
    for (flag, value) in &overrides {
        if flag == "--catalog" {
            catalog = usta_catalog::Catalog::load_dir(value).map_err(|e| e.to_string())?;
            catalog.install().map_err(|e| e.to_string())?;
        }
    }

    let mut config = if smoke {
        SweepConfig::smoke()
    } else {
        SweepConfig::default()
    };
    let mut quiet = false;
    let mut list_devices = false;
    let mut list_scenarios = false;
    let mut metrics_json = None;
    let mut metrics_prom = None;
    let mut chrome_trace = None;
    let mut target_p99_over = None;
    let mut target_iters = 7usize;
    for (flag, value) in overrides {
        match flag.as_str() {
            "--users" => config.users = parse_value(&flag, &value)?,
            "--scenarios" => {
                config.scenarios = parse_value(&flag, &value)?;
                config.smoke = false;
            }
            "--threads" => config.threads = parse_value(&flag, &value)?,
            "--seed" => config.seed = parse_value(&flag, &value)?,
            "--governor" => config.governor = value,
            "--device" => {
                config.devices = if value.eq_ignore_ascii_case("all") {
                    usta_device::merged_ids()
                        .iter()
                        .map(|&n| n.to_owned())
                        .collect()
                } else {
                    value.split(',').map(|s| s.trim().to_owned()).collect()
                };
            }
            "--catalog" => {} // handled in the install pass above
            "--grid" => {
                let spec = catalog.grid(&value).ok_or_else(|| {
                    let known: Vec<&str> =
                        catalog.grids.iter().map(|g| g.name.as_str()).collect();
                    if known.is_empty() {
                        format!("--grid: unknown grid {value:?} (no grids loaded — pass --catalog DIR first)")
                    } else {
                        format!("--grid: unknown grid {value:?} (known: {})", known.join(", "))
                    }
                })?;
                config.grid = Some(GridAxes::from_spec(spec)?);
                config.smoke = false;
            }
            "--trace-dir" => config.trace_dir = Some(value.into()),
            "--trace-steps" => config.trace_steps = parse_value(&flag, &value)?,
            "--flight-windows" => config.flight_windows = parse_value(&flag, &value)?,
            "--triage-over" => config.triage_over_fraction = parse_value(&flag, &value)?,
            "--metrics-json" => metrics_json = Some(value.into()),
            "--metrics-prom" => metrics_prom = Some(value.into()),
            "--chrome-trace" => chrome_trace = Some(value.into()),
            "--target-p99-over" => target_p99_over = Some(parse_value(&flag, &value)?),
            "--target-iters" => target_iters = parse_value(&flag, &value)?,
            "--sim-seconds" => config.max_sim_seconds = parse_value(&flag, &value)?,
            "no-usta" => config.usta = false,
            "quiet" => quiet = true,
            "list-devices" => list_devices = true,
            "list-scenarios" => list_scenarios = true,
            _ => unreachable!("collected flags are known"),
        }
    }
    if config.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if let Some(budget) = target_p99_over {
        if !(0.0..=1.0).contains(&budget) {
            return Err("--target-p99-over must be a fraction in [0, 1]".into());
        }
    }
    Ok(CliOptions {
        config,
        quiet,
        list_devices,
        list_scenarios,
        catalog,
        metrics_json,
        metrics_prom,
        chrome_trace,
        target_p99_over,
        target_iters,
    })
}

/// The `--list-devices` text: one row per merged-registry spec (file
/// installs override built-ins), with domain and thermal summaries.
fn list_devices_text() -> String {
    let merged = usta_device::merged();
    let builtin = usta_device::Registry::builtin().len();
    let mut s = format!("devices ({builtin} built-in, {} total):\n", merged.len());
    for spec in merged {
        let mut domains: Vec<&str> = spec.clusters.iter().map(|c| c.name).collect();
        if spec.gpu.is_some() {
            domains.push("gpu");
        }
        if spec.brightness_ladder.is_some() {
            domains.push("display");
        }
        s.push_str(&format!(
            "  {:<16} {} cores ({}), domains: {}; thermal: {} nodes, die: {}; back: {}\n",
            spec.id,
            spec.cores(),
            spec.topology(),
            domains.join(", "),
            spec.thermal.nodes.len(),
            spec.thermal.die_nodes.join(", "),
            usta_catalog::material_name(spec.back_cover),
        ));
        s.push_str(&format!("  {:<16} {}\n", "", spec.description));
    }
    s
}

/// The `--list-scenarios` text: the built-in full and smoke catalogs
/// plus any grids the `--catalog` directory loaded.
fn list_scenarios_text(catalog: &usta_catalog::Catalog) -> String {
    let full = GridAxes::default();
    let mut s = String::from("scenario catalogs (per device):\n");
    s.push_str(&format!(
        "  {:<16} {} scenarios ({} benchmarks x {} ambients x {} cases x {} charging x {} grip)\n",
        "full",
        full.len_per_device(),
        full.benchmarks.len(),
        full.ambients.len(),
        full.cases.len(),
        full.charging.len(),
        full.hand_held.len(),
    ));
    s.push_str(&format!(
        "  {:<16} {} fixed short scenarios (CI preset)\n",
        "smoke",
        ScenarioCatalog::smoke().len(),
    ));
    s.push_str("grids loaded from --catalog:\n");
    if catalog.grids.is_empty() {
        s.push_str("  (none — pass --catalog DIR to load grid files)\n");
    }
    for grid in &catalog.grids {
        s.push_str(&format!(
            "  {:<16} {} scenarios ({} benchmarks x {} ambients x {} cases x {} charging x {} grip)\n",
            grid.name,
            grid.len_per_device(),
            grid.benchmarks.len(),
            grid.ambients.len(),
            grid.cases.len(),
            grid.charging.len(),
            grid.hand_held.len(),
        ));
    }
    s
}

/// The stderr progress line: one background thread re-renders
/// `\r`-in-place at most twice a second from the `fleet.triples`
/// counter, and clears itself when the sweep finishes.
struct ProgressLine {
    stop: std::sync::mpsc::Sender<()>,
    handle: std::thread::JoinHandle<()>,
}

impl ProgressLine {
    fn spawn(
        total: usize,
        counter: usta_telemetry::Counter,
        inflight: usta_telemetry::Gauge,
        queue_depth: usta_telemetry::Gauge,
    ) -> ProgressLine {
        let (stop, ticks) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut printed = false;
            // The send (or a dropped sender) ends the loop; the
            // timeout is the 500 ms render cadence.
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) =
                ticks.recv_timeout(Duration::from_millis(500))
            {
                let done = counter.value().min(total as u64) as usize;
                let elapsed = started.elapsed().as_secs_f64();
                let rate = done as f64 / elapsed.max(1e-9);
                let eta = if done > 0 {
                    format!("{:.0} s", (total - done) as f64 / rate)
                } else {
                    "—".to_owned()
                };
                // Per-worker busy fractions are wall-clock gauges
                // (`fleet.worker<N>.busy`) — stderr only, never part
                // of the diffed stdout surface.
                let mut busy: Vec<(&str, f64)> = usta_telemetry::global()
                    .gauges()
                    .into_iter()
                    .filter(|(name, _)| name.starts_with("fleet.worker") && name.ends_with(".busy"))
                    .collect();
                busy.sort_by_key(|&(name, _)| {
                    name["fleet.worker".len()..name.len() - ".busy".len()]
                        .parse::<usize>()
                        .unwrap_or(usize::MAX)
                });
                let busy = if busy.is_empty() {
                    String::new()
                } else {
                    format!(
                        "  busy {}",
                        busy.iter()
                            .map(|(_, v)| format!("{:.0}%", v * 100.0))
                            .collect::<Vec<_>>()
                            .join("/")
                    )
                };
                eprint!(
                    "\r{done}/{total} triples  {rate:.1} sims/s  \
                     inflight {:.0}  queue {:.0}{busy}  eta {eta}    ",
                    inflight.value(),
                    queue_depth.value(),
                );
                printed = true;
            }
            if printed {
                // Blank the line so the final timing message starts clean.
                eprint!("\r{:78}\r", "");
            }
        });
        ProgressLine { stop, handle }
    }

    fn finish(self) {
        let _ = self.stop.send(());
        let _ = self.handle.join();
    }
}

/// Writes `contents` to `path`, mapping failures to a CLI error line.
fn write_artifact(kind: &str, path: &std::path::Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{kind} {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                eprint!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let config = &options.config;

    if options.list_devices || options.list_scenarios {
        if options.list_devices {
            print!("{}", list_devices_text());
        }
        if options.list_scenarios {
            print!("{}", list_scenarios_text(&options.catalog));
        }
        return ExitCode::SUCCESS;
    }

    // Telemetry powers both the exports and the progress line; a quiet
    // run with no export flags keeps the sink disabled (a true no-op).
    let wants_telemetry = !options.quiet
        || options.metrics_json.is_some()
        || options.metrics_prom.is_some()
        || options.chrome_trace.is_some();
    if wants_telemetry {
        usta_telemetry::enable();
    }
    // Percentile targeting runs up to 2 + iters full sweeps; size the
    // progress denominator to that upper bound.
    let probe_sweeps = options
        .target_p99_over
        .map_or(1, |_| 2 + options.target_iters);
    let progress = (!options.quiet).then(|| {
        ProgressLine::spawn(
            config.total_triples() * probe_sweeps,
            usta_telemetry::global().counter("fleet.triples"),
            usta_telemetry::global().gauge("fleet.inflight_triples"),
            usta_telemetry::global().gauge("fleet.queue_depth"),
        )
    });

    let started = Instant::now();
    let outcome = match options.target_p99_over {
        Some(budget) => {
            target_percentile(config, budget, options.target_iters).map(|target| {
                // The whole trajectory block is deterministic — CI
                // diffs it across thread counts like the summary.
                let mut s = format!("percentile target: p99 time-over-limit <= {budget:.4}\n");
                for probe in &target.trajectory {
                    s.push_str(&format!(
                        "  probe {:>6.2}% -> p99 {:.4} ({})\n",
                        probe.percentile,
                        probe.p99_time_over,
                        if probe.feasible { "ok" } else { "over" },
                    ));
                }
                if target.feasible {
                    s.push_str(&format!(
                        "chosen percentile: {:.2} (p99 {:.4} <= {budget:.4})\n",
                        target.percentile, target.p99_time_over,
                    ));
                } else {
                    s.push_str(&format!(
                        "no feasible percentile: strictest (0) still over \
                         (p99 {:.4} > {budget:.4})\n",
                        target.p99_time_over,
                    ));
                }
                print!("{s}");
                target.report
            })
        }
        None => run_sweep(config),
    };
    if let Some(progress) = progress {
        progress.finish();
    }
    match outcome {
        Ok(report) => {
            let elapsed = started.elapsed().as_secs_f64();
            print!("{}", report.summary());
            // The telemetry block rides along only when an export flag
            // asked for it, and holds counters alone — deterministic,
            // so the stdout diff across thread counts still passes.
            if options.metrics_json.is_some()
                || options.metrics_prom.is_some()
                || options.chrome_trace.is_some()
            {
                println!("telemetry:");
                for (name, value) in usta_telemetry::global().counters() {
                    println!("  {name} {value}");
                }
            }
            if !options.quiet {
                eprintln!(
                    "done in {elapsed:.2} s ({:.0} simulated user-seconds per wall-second)",
                    report.aggregate.sim_seconds / elapsed
                );
            }
            let export = || -> Result<(), String> {
                if let Some(path) = &options.metrics_json {
                    write_artifact("metrics-json", path, &usta_telemetry::global().to_json())?;
                }
                if let Some(path) = &options.metrics_prom {
                    write_artifact(
                        "metrics-prom",
                        path,
                        &usta_telemetry::global().render_prometheus(),
                    )?;
                }
                if let Some(path) = &options.chrome_trace {
                    write_artifact(
                        "chrome-trace",
                        path,
                        &usta_telemetry::trace::chrome_trace_json(),
                    )?;
                }
                Ok(())
            };
            if let Err(message) = export() {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
