//! Population-scale USTA sweep CLI.
//!
//! The aggregate report goes to **stdout** and never mentions the
//! thread count, so `--threads 1` and `--threads 4` runs of the same
//! sweep emit bit-identical bytes (CI diffs them). Progress and timing
//! go to stderr: a rate-limited progress line driven by the
//! `fleet.triples` telemetry counter, silenced by `--quiet`.
//!
//! `--metrics-json` and `--chrome-trace` export the run's telemetry —
//! the metrics file splits deterministic work counters (bit-identical
//! at any `--threads`) from wall-clock timings (reported, never
//! compared), and the trace file loads in `chrome://tracing` or
//! Perfetto.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use usta_fleet::{run_sweep, SweepConfig};

/// The help text, with the device list taken from the live registry so
/// catalog growth never goes stale here.
fn usage() -> String {
    format!(
        "\
fleet_sweep — population-scale USTA simulation sweep

USAGE:
    fleet_sweep [OPTIONS]

OPTIONS:
    --users N          sampled users                      [default: 100]
    --scenarios N      scenarios sampled from the grid    [default: 4]
    --threads N        worker threads (never changes results) [default: 1]
    --seed N           run seed                           [default: 42]
    --governor NAME    baseline governor                  [default: ondemand]
    --device LIST      comma-separated device ids, or \"all\" [default: nexus4]
                       (known: {})
    --trace-dir DIR    write a per-triple CSV summary (triples.csv) to DIR,
                       plus triaged flight recordings (flight-<index>.json)
                       and the worst-triples table in the report
    --trace-steps N    also write the first N triples' full step traces
                       (steps-<index>.csv, per-domain freq columns) to DIR
    --flight-windows N flight-recorder ring capacity per triple (governor
                       windows kept for triage; 0 disables) [default: 512]
    --triage-over F    dump a triple's recording when its time-over-limit
                       fraction reaches F                  [default: 0.02]
    --metrics-json PATH  write the telemetry registry (deterministic
                       counters + wall-clock timings) as JSON to PATH
    --metrics-prom PATH  write the registry in Prometheus/OpenMetrics
                       text exposition format to PATH
    --chrome-trace PATH  write the span trace as Chrome trace-event JSON
                       (open in chrome://tracing or Perfetto) to PATH
    --quiet            no stderr progress line
    --no-usta          sweep the bare baseline (no USTA wrap)
    --sim-seconds F    per-triple simulated-time cap      [default: 180]
    --smoke            CI preset: ~100 short triples per device, small training
    --help             print this help
",
        usta_device::NAMES.join(", ")
    )
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

/// Everything parsed from argv: the sweep itself plus the CLI-only
/// telemetry/export knobs.
struct CliOptions {
    config: SweepConfig,
    quiet: bool,
    metrics_json: Option<std::path::PathBuf>,
    metrics_prom: Option<std::path::PathBuf>,
    chrome_trace: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut args = std::env::args();
    let _argv0 = args.next();
    // First pass collects flags; --smoke swaps the base preset, and any
    // explicit flag overrides it regardless of order.
    let mut smoke = false;
    let mut overrides: Vec<(String, String)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-usta" => overrides.push(("no-usta".into(), String::new())),
            "--quiet" => overrides.push(("quiet".into(), String::new())),
            "--help" | "-h" => return Err(String::new()),
            "--users" | "--scenarios" | "--threads" | "--seed" | "--governor" | "--sim-seconds"
            | "--device" | "--trace-dir" | "--trace-steps" | "--flight-windows"
            | "--triage-over" | "--metrics-json" | "--metrics-prom" | "--chrome-trace" => {
                let value = args.next().ok_or_else(|| format!("{arg} needs a value"))?;
                overrides.push((arg, value));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let mut config = if smoke {
        SweepConfig::smoke()
    } else {
        SweepConfig::default()
    };
    let mut quiet = false;
    let mut metrics_json = None;
    let mut metrics_prom = None;
    let mut chrome_trace = None;
    for (flag, value) in overrides {
        match flag.as_str() {
            "--users" => config.users = parse_value(&flag, &value)?,
            "--scenarios" => {
                config.scenarios = parse_value(&flag, &value)?;
                config.smoke = false;
            }
            "--threads" => config.threads = parse_value(&flag, &value)?,
            "--seed" => config.seed = parse_value(&flag, &value)?,
            "--governor" => config.governor = value,
            "--device" => {
                config.devices = if value.eq_ignore_ascii_case("all") {
                    usta_device::NAMES.iter().map(|&n| n.to_owned()).collect()
                } else {
                    value.split(',').map(|s| s.trim().to_owned()).collect()
                };
            }
            "--trace-dir" => config.trace_dir = Some(value.into()),
            "--trace-steps" => config.trace_steps = parse_value(&flag, &value)?,
            "--flight-windows" => config.flight_windows = parse_value(&flag, &value)?,
            "--triage-over" => config.triage_over_fraction = parse_value(&flag, &value)?,
            "--metrics-json" => metrics_json = Some(value.into()),
            "--metrics-prom" => metrics_prom = Some(value.into()),
            "--chrome-trace" => chrome_trace = Some(value.into()),
            "--sim-seconds" => config.max_sim_seconds = parse_value(&flag, &value)?,
            "no-usta" => config.usta = false,
            "quiet" => quiet = true,
            _ => unreachable!("collected flags are known"),
        }
    }
    if config.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(CliOptions {
        config,
        quiet,
        metrics_json,
        metrics_prom,
        chrome_trace,
    })
}

/// The stderr progress line: one background thread re-renders
/// `\r`-in-place at most twice a second from the `fleet.triples`
/// counter, and clears itself when the sweep finishes.
struct ProgressLine {
    stop: std::sync::mpsc::Sender<()>,
    handle: std::thread::JoinHandle<()>,
}

impl ProgressLine {
    fn spawn(
        total: usize,
        counter: usta_telemetry::Counter,
        inflight: usta_telemetry::Gauge,
        queue_depth: usta_telemetry::Gauge,
    ) -> ProgressLine {
        let (stop, ticks) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut printed = false;
            // The send (or a dropped sender) ends the loop; the
            // timeout is the 500 ms render cadence.
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) =
                ticks.recv_timeout(Duration::from_millis(500))
            {
                let done = counter.value().min(total as u64) as usize;
                let elapsed = started.elapsed().as_secs_f64();
                let rate = done as f64 / elapsed.max(1e-9);
                let eta = if done > 0 {
                    format!("{:.0} s", (total - done) as f64 / rate)
                } else {
                    "—".to_owned()
                };
                eprint!(
                    "\r{done}/{total} triples  {rate:.1} sims/s  \
                     inflight {:.0}  queue {:.0}  eta {eta}    ",
                    inflight.value(),
                    queue_depth.value(),
                );
                printed = true;
            }
            if printed {
                // Blank the line so the final timing message starts clean.
                eprint!("\r{:78}\r", "");
            }
        });
        ProgressLine { stop, handle }
    }

    fn finish(self) {
        let _ = self.stop.send(());
        let _ = self.handle.join();
    }
}

/// Writes `contents` to `path`, mapping failures to a CLI error line.
fn write_artifact(kind: &str, path: &std::path::Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{kind} {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                eprint!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let config = &options.config;

    // Telemetry powers both the exports and the progress line; a quiet
    // run with no export flags keeps the sink disabled (a true no-op).
    let wants_telemetry = !options.quiet
        || options.metrics_json.is_some()
        || options.metrics_prom.is_some()
        || options.chrome_trace.is_some();
    if wants_telemetry {
        usta_telemetry::enable();
    }
    let progress = (!options.quiet).then(|| {
        ProgressLine::spawn(
            config.total_triples(),
            usta_telemetry::global().counter("fleet.triples"),
            usta_telemetry::global().gauge("fleet.inflight_triples"),
            usta_telemetry::global().gauge("fleet.queue_depth"),
        )
    });

    let started = Instant::now();
    let outcome = run_sweep(config);
    if let Some(progress) = progress {
        progress.finish();
    }
    match outcome {
        Ok(report) => {
            let elapsed = started.elapsed().as_secs_f64();
            print!("{}", report.summary());
            // The telemetry block rides along only when an export flag
            // asked for it, and holds counters alone — deterministic,
            // so the stdout diff across thread counts still passes.
            if options.metrics_json.is_some()
                || options.metrics_prom.is_some()
                || options.chrome_trace.is_some()
            {
                println!("telemetry:");
                for (name, value) in usta_telemetry::global().counters() {
                    println!("  {name} {value}");
                }
            }
            if !options.quiet {
                eprintln!(
                    "done in {elapsed:.2} s ({:.0} simulated user-seconds per wall-second)",
                    report.aggregate.sim_seconds / elapsed
                );
            }
            let export = || -> Result<(), String> {
                if let Some(path) = &options.metrics_json {
                    write_artifact("metrics-json", path, &usta_telemetry::global().to_json())?;
                }
                if let Some(path) = &options.metrics_prom {
                    write_artifact(
                        "metrics-prom",
                        path,
                        &usta_telemetry::global().render_prometheus(),
                    )?;
                }
                if let Some(path) = &options.chrome_trace {
                    write_artifact(
                        "chrome-trace",
                        path,
                        &usta_telemetry::trace::chrome_trace_json(),
                    )?;
                }
                Ok(())
            };
            if let Err(message) = export() {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
