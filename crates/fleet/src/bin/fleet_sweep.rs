//! Population-scale USTA sweep CLI.
//!
//! The aggregate report goes to **stdout** and never mentions the
//! thread count, so `--threads 1` and `--threads 4` runs of the same
//! sweep emit bit-identical bytes (CI diffs them). Progress and timing
//! go to stderr.

use std::process::ExitCode;
use std::time::Instant;

use usta_fleet::{run_sweep, SweepConfig};

/// The help text, with the device list taken from the live registry so
/// catalog growth never goes stale here.
fn usage() -> String {
    format!(
        "\
fleet_sweep — population-scale USTA simulation sweep

USAGE:
    fleet_sweep [OPTIONS]

OPTIONS:
    --users N          sampled users                      [default: 100]
    --scenarios N      scenarios sampled from the grid    [default: 4]
    --threads N        worker threads (never changes results) [default: 1]
    --seed N           run seed                           [default: 42]
    --governor NAME    baseline governor                  [default: ondemand]
    --device LIST      comma-separated device ids, or \"all\" [default: nexus4]
                       (known: {})
    --trace-dir DIR    write a per-triple CSV summary (triples.csv) to DIR
    --trace-steps N    also write the first N triples' full step traces
                       (steps-<index>.csv, per-domain freq columns) to DIR
    --no-usta          sweep the bare baseline (no USTA wrap)
    --sim-seconds F    per-triple simulated-time cap      [default: 180]
    --smoke            CI preset: ~100 short triples per device, small training
    --help             print this help
",
        usta_device::NAMES.join(", ")
    )
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn parse_args() -> Result<SweepConfig, String> {
    let mut args = std::env::args();
    let _argv0 = args.next();
    // First pass collects flags; --smoke swaps the base preset, and any
    // explicit flag overrides it regardless of order.
    let mut smoke = false;
    let mut overrides: Vec<(String, String)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-usta" => overrides.push(("no-usta".into(), String::new())),
            "--help" | "-h" => return Err(String::new()),
            "--users" | "--scenarios" | "--threads" | "--seed" | "--governor" | "--sim-seconds"
            | "--device" | "--trace-dir" | "--trace-steps" => {
                let value = args.next().ok_or_else(|| format!("{arg} needs a value"))?;
                overrides.push((arg, value));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let mut config = if smoke {
        SweepConfig::smoke()
    } else {
        SweepConfig::default()
    };
    for (flag, value) in overrides {
        match flag.as_str() {
            "--users" => config.users = parse_value(&flag, &value)?,
            "--scenarios" => {
                config.scenarios = parse_value(&flag, &value)?;
                config.smoke = false;
            }
            "--threads" => config.threads = parse_value(&flag, &value)?,
            "--seed" => config.seed = parse_value(&flag, &value)?,
            "--governor" => config.governor = value,
            "--device" => {
                config.devices = if value.eq_ignore_ascii_case("all") {
                    usta_device::NAMES.iter().map(|&n| n.to_owned()).collect()
                } else {
                    value.split(',').map(|s| s.trim().to_owned()).collect()
                };
            }
            "--trace-dir" => config.trace_dir = Some(value.into()),
            "--trace-steps" => config.trace_steps = parse_value(&flag, &value)?,
            "--sim-seconds" => config.max_sim_seconds = parse_value(&flag, &value)?,
            "no-usta" => config.usta = false,
            _ => unreachable!("collected flags are known"),
        }
    }
    if config.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            if message.is_empty() {
                eprint!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "sweeping {} triples on {} thread(s)…",
        config.total_triples(),
        config.threads
    );
    let started = Instant::now();
    match run_sweep(&config) {
        Ok(report) => {
            let elapsed = started.elapsed().as_secs_f64();
            print!("{}", report.summary());
            eprintln!(
                "done in {elapsed:.2} s ({:.0} simulated user-seconds per wall-second)",
                report.aggregate.sim_seconds / elapsed
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
