//! Streaming, mergeable aggregation for fleet sweeps.
//!
//! A million-triple sweep cannot keep a million [`usta_sim::RunResult`]s
//! alive; each worker folds every finished triple into an
//! O(bins)-memory [`FleetAggregate`] and the sweep merges the per-chunk
//! partials afterwards. Two kinds of state compose each metric:
//!
//! * [`OnlineStats`] — count, sum, min, max. Merging adds sums, so the
//!   result is bit-identical **as long as partials are merged in a
//!   fixed order** (the sweep merges chunk 0, 1, 2, … regardless of
//!   which thread produced each chunk).
//! * [`Histogram`] — fixed-bin counts over a known range. Integer
//!   counts make merging exactly order-independent, and quantiles read
//!   off the cumulative counts at bin resolution.

/// Running count / sum / min / max of one scalar metric.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for OnlineStats {
    fn default() -> OnlineStats {
        OnlineStats::new()
    }
}

/// Fixed-bin histogram over `[lo, hi)` with saturating end bins.
///
/// Out-of-range observations land in the first/last bin, so quantiles
/// degrade gracefully rather than silently dropping mass.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty or non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Folds in one observation.
    pub fn record(&mut self, x: f64) {
        let n = self.bins.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        // NaN compares false everywhere → lands in bin 0 (clamp keeps
        // the sketch total consistent with the online count).
        let idx = if frac.is_nan() || frac <= 0.0 {
            0
        } else {
            ((frac * n as f64) as usize).min(n - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Folds another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different shapes.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) at bin resolution: the **upper
    /// edge** of the first bin whose cumulative count reaches `q` of
    /// the total. Returns NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                let width = (self.hi - self.lo) / self.bins.len() as f64;
                return self.lo + width * (i + 1) as f64;
            }
        }
        self.hi
    }

    /// The bin counts (for tests and exports).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

/// One metric tracked both exactly (mean/min/max) and as a sketch
/// (quantiles).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAggregate {
    /// Exact streaming moments.
    pub stats: OnlineStats,
    /// Quantile sketch.
    pub sketch: Histogram,
}

impl MetricAggregate {
    /// A metric over `[lo, hi)` with `bins` sketch bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> MetricAggregate {
        MetricAggregate {
            stats: OnlineStats::new(),
            sketch: Histogram::new(lo, hi, bins),
        }
    }

    /// Folds in one observation.
    pub fn record(&mut self, x: f64) {
        self.stats.record(x);
        self.sketch.record(x);
    }

    /// Folds another metric aggregate into this one.
    pub fn merge(&mut self, other: &MetricAggregate) {
        self.stats.merge(&other.stats);
        self.sketch.merge(&other.sketch);
    }

    /// One formatted report row: mean, min, p50, p90, p99, max.
    pub fn row(&self) -> String {
        format!(
            "{:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            self.stats.mean(),
            self.stats.min(),
            self.sketch.quantile(0.50),
            self.sketch.quantile(0.90),
            self.sketch.quantile(0.99),
            self.stats.max(),
        )
    }
}

/// The full per-sweep aggregate: one [`MetricAggregate`] per reported
/// fleet metric, plus totals and per-frequency-domain statistics for
/// multi-domain devices.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregate {
    /// Triples folded in so far.
    pub triples: u64,
    /// Total simulated seconds folded in so far.
    pub sim_seconds: f64,
    /// Peak true skin temperature per triple, °C.
    pub peak_skin: MetricAggregate,
    /// Fraction of each session spent above the user's own skin limit.
    pub time_over_limit: MetricAggregate,
    /// QoS per triple: delivered / demanded CPU cycles, 0–1.
    pub qos: MetricAggregate,
    /// Per-domain time-weighted average frequency (GHz), keyed
    /// `"<device>/<domain>"` — recorded only for multi-domain devices
    /// (a single-domain device's frequency story is its aggregate
    /// metrics; the per-domain rows are what the multi-domain control
    /// plane adds). `BTreeMap` keeps report order deterministic.
    pub domain_freq_ghz: std::collections::BTreeMap<String, MetricAggregate>,
    /// Session-average effective display brightness (0–1), keyed by
    /// device id — recorded only for devices with a governed display
    /// domain (the arbiter can dim the panel, so the fleet reports how
    /// much light users actually got). `BTreeMap` keeps report order
    /// deterministic.
    pub brightness: std::collections::BTreeMap<String, MetricAggregate>,
    /// Per-die-node peak temperature (°C), keyed `"<device>/<node>"` —
    /// recorded only for multi-cluster devices (the per-cluster
    /// thermal attribution the data-driven topology adds; single-die
    /// devices' thermal story is `peak skin`). `BTreeMap` keeps report
    /// order deterministic.
    pub die_temp_c: std::collections::BTreeMap<String, MetricAggregate>,
    /// Summed deterministic work counters across every folded triple.
    /// Integer adds are exactly order-independent, so this joins the
    /// thread-count-invariant golden surface (CI asserts it equal at
    /// `--threads 1` vs `4`).
    pub work: usta_sim::RunWork,
}

impl FleetAggregate {
    /// The sketch shape of one `domain_freq_ghz` entry: 0–4 GHz at
    /// 5 MHz bins. One constructor for `record` and `merge` — worker
    /// partials and the coordinator must agree on the shape or
    /// [`Histogram::merge`] panics.
    fn domain_freq_metric() -> MetricAggregate {
        MetricAggregate::new(0.0, 4.0, 800)
    }

    /// The sketch shape of one `die_temp_c` entry: 0–150 °C at 0.1 °C
    /// bins (die hotspots run far above the skin sketch's 60 °C).
    fn die_temp_metric() -> MetricAggregate {
        MetricAggregate::new(0.0, 150.0, 1500)
    }

    /// The sketch shape of one `brightness` entry: the 0–1 fraction in
    /// 500 bins, like the other fraction metrics.
    fn brightness_metric() -> MetricAggregate {
        MetricAggregate::new(0.0, 1.0, 500)
    }

    /// An empty aggregate with the fleet's standard sketch ranges:
    /// skin 0–60 °C at 0.05 °C bins (winter scenarios peak well below
    /// room temperature); fractions over [0, 1] in 500 bins; domain
    /// frequencies 0–4 GHz at 5 MHz bins.
    pub fn new() -> FleetAggregate {
        FleetAggregate {
            triples: 0,
            sim_seconds: 0.0,
            peak_skin: MetricAggregate::new(0.0, 60.0, 1200),
            time_over_limit: MetricAggregate::new(0.0, 1.0, 500),
            qos: MetricAggregate::new(0.0, 1.0, 500),
            domain_freq_ghz: std::collections::BTreeMap::new(),
            brightness: std::collections::BTreeMap::new(),
            die_temp_c: std::collections::BTreeMap::new(),
            work: usta_sim::RunWork::default(),
        }
    }

    /// Folds one finished triple into the aggregate.
    pub fn record(&mut self, outcome: &TripleOutcome) {
        self.triples += 1;
        self.sim_seconds += outcome.sim_seconds;
        self.work.merge(&outcome.work);
        self.peak_skin.record(outcome.peak_skin_c);
        self.time_over_limit.record(outcome.time_over_fraction);
        self.qos.record(outcome.qos);
        if outcome.domain_names.len() > 1 {
            for d in 0..outcome.domain_names.len() {
                // The display domain's "frequency" is brightness
                // permille; it reports through the brightness row
                // below, not as a bogus GHz figure.
                if outcome.domain_names[d] == "display" {
                    continue;
                }
                let key = format!("{}/{}", outcome.device, outcome.domain_names[d]);
                self.domain_freq_ghz
                    .entry(key)
                    .or_insert_with(Self::domain_freq_metric)
                    .record(outcome.domain_freq_ghz[d]);
            }
            for d in 0..outcome.die_node_names.len() {
                let key = format!("{}/{}", outcome.device, outcome.die_node_names[d]);
                self.die_temp_c
                    .entry(key)
                    .or_insert_with(Self::die_temp_metric)
                    .record(outcome.peak_die_c[d]);
            }
        }
        if let Some(b) = outcome.avg_brightness {
            self.brightness
                .entry(outcome.device.to_owned())
                .or_insert_with(Self::brightness_metric)
                .record(b);
        }
    }

    /// Folds another aggregate into this one. Call in a fixed partial
    /// order (chunk index) for bit-identical sums.
    pub fn merge(&mut self, other: &FleetAggregate) {
        self.triples += other.triples;
        self.sim_seconds += other.sim_seconds;
        self.work.merge(&other.work);
        self.peak_skin.merge(&other.peak_skin);
        self.time_over_limit.merge(&other.time_over_limit);
        self.qos.merge(&other.qos);
        for (key, metric) in &other.domain_freq_ghz {
            self.domain_freq_ghz
                .entry(key.clone())
                .or_insert_with(Self::domain_freq_metric)
                .merge(metric);
        }
        for (key, metric) in &other.brightness {
            self.brightness
                .entry(key.clone())
                .or_insert_with(Self::brightness_metric)
                .merge(metric);
        }
        for (key, metric) in &other.die_temp_c {
            self.die_temp_c
                .entry(key.clone())
                .or_insert_with(Self::die_temp_metric)
                .merge(metric);
        }
    }

    /// The aggregate as a fixed-width report table. Sweeps that touch
    /// no multi-domain device print exactly the historical three-metric
    /// table; multi-domain devices append one `freq [GHz]` row per
    /// (device, CPU or GPU domain), one `brightness` row per
    /// display-domain device, and one `temp [C]` row per (device, die
    /// node), in key order.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "triples {:>10}   simulated {:>14.1} s\n",
            self.triples, self.sim_seconds
        ));
        out.push_str(&format!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "metric", "mean", "min", "p50", "p90", "p99", "max"
        ));
        out.push_str(&format!(
            "{:<18} {}\n",
            "peak skin [C]",
            self.peak_skin.row()
        ));
        out.push_str(&format!(
            "{:<18} {}\n",
            "time over limit",
            self.time_over_limit.row()
        ));
        out.push_str(&format!("{:<18} {}\n", "qos", self.qos.row()));
        for (key, metric) in &self.domain_freq_ghz {
            out.push_str(&format!(
                "{:<18} {}\n",
                format!("freq [GHz] {key}"),
                metric.row()
            ));
        }
        for (key, metric) in &self.brightness {
            out.push_str(&format!(
                "{:<18} {}\n",
                format!("brightness {key}"),
                metric.row()
            ));
        }
        for (key, metric) in &self.die_temp_c {
            out.push_str(&format!(
                "{:<18} {}\n",
                format!("temp [C] {key}"),
                metric.row()
            ));
        }
        out
    }
}

impl Default for FleetAggregate {
    fn default() -> FleetAggregate {
        FleetAggregate::new()
    }
}

/// The scalar summary of one simulated (user, device, scenario) triple —
/// all the sweep keeps of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripleOutcome {
    /// Simulated session length, seconds.
    pub sim_seconds: f64,
    /// Peak true skin temperature, °C.
    pub peak_skin_c: f64,
    /// Fraction of the session above the user's skin limit, 0–1.
    pub time_over_fraction: f64,
    /// Delivered / demanded CPU cycles, 0–1.
    pub qos: f64,
    /// Canonical id of the device the triple ran on.
    pub device: &'static str,
    /// The device's frequency-domain names, big-first.
    pub domain_names: usta_soc::PerDomain<&'static str>,
    /// Time-weighted average frequency per domain, GHz, indexed like
    /// `domain_names`.
    pub domain_freq_ghz: usta_soc::PerDomain<f64>,
    /// The device's die-node names, big-first (from the spec's thermal
    /// topology).
    pub die_node_names: usta_soc::PerDomain<&'static str>,
    /// Peak true die temperature per die node over the session, °C,
    /// indexed like `die_node_names`.
    pub peak_die_c: usta_soc::PerDomain<f64>,
    /// Session-average effective display brightness, 0–1; `None` on
    /// devices without a governed display domain.
    pub avg_brightness: Option<f64>,
    /// The run's deterministic work counters.
    pub work: usta_sim::RunWork,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_track_moments() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn chunk_ordered_merge_is_independent_of_completion_order() {
        // The sweep's invariant: partials folded per chunk and merged in
        // chunk-index order give the same bits no matter which worker
        // finished which chunk first. Simulate four chunks produced in
        // two different completion orders.
        let outcome = |i: usize| {
            let x = (i as f64) * 0.37;
            TripleOutcome {
                sim_seconds: 1.0,
                peak_skin_c: 20.0 + x % 30.0,
                time_over_fraction: (x / 40.0).min(1.0),
                qos: 1.0 - (x / 80.0).min(1.0),
                device: "flagship-octa",
                domain_names: usta_soc::PerDomain::from_slice(&["big", "little"]),
                domain_freq_ghz: usta_soc::PerDomain::from_slice(&[
                    1.0 + (x % 1.0),
                    0.3 + (x % 0.7),
                ]),
                die_node_names: usta_soc::PerDomain::from_slice(&["die_big", "die_little"]),
                peak_die_c: usta_soc::PerDomain::from_slice(&[45.0 + x % 20.0, 35.0 + x % 15.0]),
                avg_brightness: Some(0.5 + (x % 0.5)),
                work: usta_sim::RunWork::default(),
            }
        };
        let chunk = |c: usize| {
            let mut partial = FleetAggregate::new();
            for i in c * 25..(c + 1) * 25 {
                partial.record(&outcome(i));
            }
            partial
        };
        let mut completion_a: Vec<(usize, FleetAggregate)> =
            vec![(2, chunk(2)), (0, chunk(0)), (3, chunk(3)), (1, chunk(1))];
        let mut completion_b: Vec<(usize, FleetAggregate)> =
            vec![(1, chunk(1)), (3, chunk(3)), (0, chunk(0)), (2, chunk(2))];
        completion_a.sort_unstable_by_key(|(c, _)| *c);
        completion_b.sort_unstable_by_key(|(c, _)| *c);
        let fold = |partials: &[(usize, FleetAggregate)]| {
            let mut total = FleetAggregate::new();
            for (_, p) in partials {
                total.merge(p);
            }
            total
        };
        let a = fold(&completion_a);
        assert_eq!(a, fold(&completion_b));
        assert_eq!(a.triples, 100);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new(0.0, 100.0, 1000);
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.quantile(0.5) - 50.0).abs() < 0.5);
        assert!((h.quantile(0.99) - 99.0).abs() < 0.5);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_saturates_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(-5.0);
        h.record(42.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn empty_aggregate_renders() {
        let a = FleetAggregate::new();
        let t = a.table();
        assert!(t.contains("triples"));
        assert!(t.contains("peak skin"));
        assert!(!t.contains("freq [GHz]"), "no domain rows when empty");
    }

    fn single_domain_outcome() -> TripleOutcome {
        TripleOutcome {
            sim_seconds: 60.0,
            peak_skin_c: 36.0,
            time_over_fraction: 0.1,
            qos: 0.95,
            device: "nexus4",
            domain_names: usta_soc::PerDomain::from_slice(&["cpu"]),
            domain_freq_ghz: usta_soc::PerDomain::from_slice(&[1.1]),
            die_node_names: usta_soc::PerDomain::from_slice(&["cpu"]),
            peak_die_c: usta_soc::PerDomain::from_slice(&[52.0]),
            avg_brightness: None,
            work: usta_sim::RunWork::default(),
        }
    }

    fn multi_domain_outcome(big_ghz: f64, little_ghz: f64) -> TripleOutcome {
        TripleOutcome {
            sim_seconds: 60.0,
            peak_skin_c: 38.0,
            time_over_fraction: 0.2,
            qos: 0.9,
            device: "flagship-octa",
            domain_names: usta_soc::PerDomain::from_slice(&["big", "little"]),
            domain_freq_ghz: usta_soc::PerDomain::from_slice(&[big_ghz, little_ghz]),
            die_node_names: usta_soc::PerDomain::from_slice(&["die_big", "die_little"]),
            peak_die_c: usta_soc::PerDomain::from_slice(&[30.0 * big_ghz, 30.0 * little_ghz]),
            avg_brightness: None,
            work: usta_sim::RunWork::default(),
        }
    }

    #[test]
    fn single_domain_devices_leave_the_historical_table_untouched() {
        let mut a = FleetAggregate::new();
        a.record(&single_domain_outcome());
        assert!(a.domain_freq_ghz.is_empty());
        assert!(a.die_temp_c.is_empty());
        assert!(!a.table().contains("freq [GHz]"));
        assert!(!a.table().contains("temp [C]"));
    }

    #[test]
    fn multi_domain_devices_stream_one_frequency_row_per_domain() {
        let mut a = FleetAggregate::new();
        a.record(&single_domain_outcome());
        a.record(&multi_domain_outcome(1.8, 0.6));
        a.record(&multi_domain_outcome(1.6, 0.8));
        assert_eq!(a.domain_freq_ghz.len(), 2);
        let big = &a.domain_freq_ghz["flagship-octa/big"];
        let little = &a.domain_freq_ghz["flagship-octa/little"];
        assert_eq!(big.stats.count(), 2);
        assert!((big.stats.mean() - 1.7).abs() < 1e-12);
        assert!((little.stats.mean() - 0.7).abs() < 1e-12);
        let t = a.table();
        assert!(t.contains("freq [GHz] flagship-octa/big"));
        assert!(t.contains("freq [GHz] flagship-octa/little"));
    }

    #[test]
    fn multi_cluster_devices_stream_one_temp_row_per_die_node() {
        let mut a = FleetAggregate::new();
        a.record(&single_domain_outcome());
        a.record(&multi_domain_outcome(1.8, 0.6));
        a.record(&multi_domain_outcome(1.6, 0.8));
        assert_eq!(a.die_temp_c.len(), 2);
        let big = &a.die_temp_c["flagship-octa/die_big"];
        let little = &a.die_temp_c["flagship-octa/die_little"];
        assert_eq!(big.stats.count(), 2);
        assert!((big.stats.mean() - 51.0).abs() < 1e-12);
        assert!((little.stats.mean() - 21.0).abs() < 1e-12);
        let t = a.table();
        assert!(t.contains("temp [C] flagship-octa/die_big"));
        assert!(t.contains("temp [C] flagship-octa/die_little"));
        // Temperature rows land after the frequency rows.
        assert!(t.find("freq [GHz]").unwrap() < t.find("temp [C]").unwrap());
    }

    #[test]
    fn domain_rows_merge_across_partials_with_disjoint_keys() {
        let mut a = FleetAggregate::new();
        a.record(&multi_domain_outcome(1.8, 0.6));
        let mut b = FleetAggregate::new();
        b.record(&single_domain_outcome());
        // Merging a partial without the keys, then one with them,
        // matches a sequential fold.
        let mut merged = FleetAggregate::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged.domain_freq_ghz.len(), 2);
        assert_eq!(merged.domain_freq_ghz["flagship-octa/big"].stats.count(), 1);
    }
}
