//! Regenerates Figure 2: percent of a 30-minute USTA-controlled Skype
//! call spent above each of eleven comfort-limit settings.

use usta_sim::experiments::fig2;

fn main() {
    let r = fig2::fig2(5);
    println!("=== Figure 2: % of 30-min Skype above threshold (USTA) ===\n");
    println!("{}", r.to_display_string());
    println!(
        "default user (37 °C): {:.1} % of the call above the limit (paper: 15.6 %)",
        r.default_user_percent()
    );
}
