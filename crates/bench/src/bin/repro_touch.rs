//! Regenerates the §3.A touch study: exterior temperatures with and
//! without a palm on the back cover, device off and under load.

use usta_sim::experiments::touch;

fn main() {
    let r = touch::touch(3);
    println!("=== §3.A touch study ===\n");
    println!("{}", r.to_display_string());
}
