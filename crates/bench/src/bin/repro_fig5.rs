//! Regenerates Figure 5: per-participant 1–5 ratings of the baseline and
//! USTA sessions, plus stated preferences.

use usta_sim::experiments::fig5;

fn main() {
    let r = fig5::fig5(17);
    println!("=== Figure 5: blind satisfaction study ===\n");
    println!("{}", r.to_display_string());
}
