//! Runs every repro experiment in sequence — the one-shot regeneration
//! of the paper's whole evaluation section.

use usta_core::predictor::PredictionTarget;
use usta_sim::experiments::{fig1, fig2, fig3, fig4, fig5, table1, touch};

fn main() {
    println!("############ USTA (DATE 2015) — full evaluation reproduction ############\n");

    let t1 = table1::table1(42);
    println!("=== Table 1 ===\n\n{}", t1.to_display_string());
    println!("headline claim holds: {}\n", t1.headline_claim_holds());

    let f1 = fig1::fig1(7);
    println!("=== Figure 1 ===\n\n{}", f1.to_display_string());

    let f2 = fig2::fig2(5);
    println!("=== Figure 2 ===\n\n{}", f2.to_display_string());
    println!(
        "default user: {:.1} % over (paper: 15.6 %)\n",
        f2.default_user_percent()
    );

    let f3 = fig3::fig3(11);
    println!("=== Figure 3 ===\n\n{}", f3.to_display_string());
    println!(
        "best skin learner: {}\n",
        f3.best_learner(PredictionTarget::Skin).learner
    );

    let f4 = fig4::fig4(13);
    println!("=== Figure 4 ===\n\n{}", f4.to_display_string());

    let f5 = fig5::fig5(17);
    println!("=== Figure 5 ===\n\n{}", f5.to_display_string());

    let t = touch::touch(3);
    println!("=== §3.A touch study ===\n\n{}", t.to_display_string());
}
