//! Regenerates Figure 4: the half-hour Skype temperature traces under
//! baseline DVFS and under USTA at the default 37 °C limit.

use usta_sim::experiments::fig4;

fn main() {
    let r = fig4::fig4(13);
    println!("=== Figure 4: Skype video call traces, baseline vs USTA ===\n");
    println!("{}", r.to_display_string());
}
