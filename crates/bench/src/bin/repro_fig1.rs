//! Regenerates Figure 1: the user study's per-participant comfort limits
//! (skin and screen temperature at the discomfort instant).

use usta_sim::experiments::fig1;

fn main() {
    let r = fig1::fig1(7);
    println!("=== Figure 1: per-user comfort limits (AnTuTu Tester hold study) ===\n");
    println!("{}", r.to_display_string());
    println!(
        "quit-skin range: {:.1}–{:.1} °C (paper: 34.0–42.8 °C); longest session {:.0} s (paper: ~7 min)",
        r.min_quit_skin().value(),
        r.max_quit_skin().value(),
        r.longest_session_s(),
    );
}
