//! Regenerates Table 1: peak screen/skin temperature and average CPU
//! frequency for all 13 benchmarks, baseline ondemand vs USTA @ 37 °C,
//! with the paper's skin numbers printed alongside.

use usta_sim::experiments::table1::table1;

fn main() {
    let t = table1(42);
    println!("=== Table 1: 13 benchmarks x {{baseline, USTA@37°C}} ===\n");
    println!("{}", t.to_display_string());
    println!(
        "headline claim (USTA reduces the peak wherever baseline comes within 2°C of 37°C): {}",
        if t.headline_claim_holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    let ours: Vec<f64> = t.rows.iter().map(|r| r.baseline.max_skin.value()).collect();
    let paper: Vec<f64> = usta_sim::experiments::PAPER_TABLE1
        .iter()
        .map(|p| p.1)
        .collect();
    println!(
        "baseline peak-skin correlation vs paper: {:.3}",
        usta_ml::metrics::correlation(&paper, &ours)
    );
}
