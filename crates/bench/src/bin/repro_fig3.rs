//! Regenerates Figure 3: 10-fold cross-validated error rates of the four
//! learners on the pooled 13-benchmark dataset, skin and screen.

use usta_core::predictor::PredictionTarget;
use usta_sim::experiments::fig3;

fn main() {
    let r = fig3::fig3(11);
    println!("=== Figure 3: predictor error rates (10-fold CV) ===\n");
    println!("{}", r.to_display_string());
    println!(
        "best on skin: {} at {:.2} % (paper: REPTree 0.95 %, M5P 0.96 %, LR/MLP worse)",
        r.best_learner(PredictionTarget::Skin).learner,
        r.best_learner(PredictionTarget::Skin).error_rate,
    );
    let m5p = r.entry("M5P", PredictionTarget::Skin);
    println!(
        "M5P skin with 1 °C dead band: {:.2} % (paper: 0.26 %)",
        m5p.error_rate_deadband
    );
}
