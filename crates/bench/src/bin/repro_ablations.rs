//! Ablations of USTA's design choices (DESIGN.md §6): prediction
//! cadence, banding policy, and predictor feature set.

use usta_sim::experiments::{cadence_sweep, feature_ablation, policy_sweep};

fn main() {
    println!("=== Ablation: prediction cadence (30-min USTA Skype @ 37°C) ===\n");
    println!("period s | predictions | % over limit | peak skin °C");
    println!("{}", "-".repeat(58));
    for row in cadence_sweep(3, &[1.0, 3.0, 10.0, 30.0]) {
        println!(
            "{:>8.0} | {:>11} | {:>12.1} | {:>6.1}",
            row.period_s,
            row.predictions,
            row.percent_over,
            row.peak_skin.value()
        );
    }

    println!("\n=== Ablation: banding policy (30-min USTA Skype @ 37°C) ===\n");
    println!("{:<28} | % over | peak °C | avg GHz", "policy");
    println!("{}", "-".repeat(62));
    for row in policy_sweep(3) {
        println!(
            "{:<28} | {:>6.1} | {:>7.1} | {:>7.2}",
            row.name,
            row.percent_over,
            row.peak_skin.value(),
            row.avg_freq_ghz
        );
    }

    println!("\n=== Ablation: predictor feature set (REPTree, 10-fold CV, skin) ===\n");
    println!("{:<22} | err % | MAE K", "features");
    println!("{}", "-".repeat(42));
    for row in feature_ablation(3) {
        println!(
            "{:<22} | {:>5.2} | {:>5.3}",
            row.features, row.error_rate, row.mae
        );
    }
}
