//! # usta-bench — benchmark harness for the USTA reproduction
//!
//! Two kinds of targets live here:
//!
//! * **Criterion benches** (`cargo bench -p usta-bench`) measure the
//!   computational cost of each piece — most importantly the §4.A
//!   predictor-overhead claim (the paper's REPTree inference costs
//!   5.6 ms per skin prediction on the phone; the claim reproduced is
//!   *negligible relative to the 3-second cadence*) and the paper's
//!   stated reason for choosing REPTree over M5P ("builds faster").
//! * **Repro binaries** (`cargo run --release -p usta-bench --bin
//!   repro_table1` etc.) regenerate every table and figure of the
//!   paper's evaluation as text rows/series, with the paper's numbers
//!   printed alongside. `repro_all` runs the lot.
//!
//! This library exposes the small shared helpers the benches use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use usta_core::predictor::PredictionTarget;
use usta_core::{TemperaturePredictor, TrainingLog};
use usta_ml::Learner;
use usta_sim::experiments::collect_global_training_log;

/// A process-wide cached copy of the global training log (the full
/// 13-benchmark campaign takes ~a second in release mode; benches should
/// not repeat it per iteration).
pub fn cached_training_log() -> &'static TrainingLog {
    use std::sync::OnceLock;
    static LOG: OnceLock<TrainingLog> = OnceLock::new();
    LOG.get_or_init(|| collect_global_training_log(0xBEEF))
}

/// Trains a predictor of the given learner on the cached log.
///
/// # Panics
///
/// Panics if training fails (it cannot on the cached campaign log).
pub fn trained(learner: &Learner, target: PredictionTarget) -> TemperaturePredictor {
    TemperaturePredictor::train(learner, cached_training_log(), target, 7)
        .expect("campaign log is non-empty and finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use usta_ml::reptree::RepTreeParams;

    #[test]
    fn cache_and_training_work() {
        let log = cached_training_log();
        assert!(log.len() > 3000);
        let p = trained(
            &Learner::RepTree(RepTreeParams::default()),
            PredictionTarget::Skin,
        );
        assert_eq!(p.algorithm(), "REPTree");
    }
}
