//! Figure 3 companion: model *build* cost.
//!
//! The paper picks REPTree over the equally-accurate M5P because it
//! "builds faster and does not cause halting" (§4.A). This bench
//! measures fit time of all four learners on the real campaign dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::cached_training_log;
use usta_core::predictor::PredictionTarget;
use usta_ml::Learner;

fn bench(c: &mut Criterion) {
    let data = cached_training_log()
        .to_dataset(PredictionTarget::Skin)
        .expect("finite log");
    let mut group = c.benchmark_group("fig3_training");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for learner in Learner::paper_set() {
        group.bench_function(learner.name(), |b| {
            b.iter(|| black_box(learner.fit(black_box(&data), 7).expect("fit succeeds")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
