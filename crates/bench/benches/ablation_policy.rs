//! Policy ablation cost: the paper's staircase vs a min-only policy vs a
//! gentle cap over a 2-minute Skype slice.
//! (Control-quality numbers come from `repro_ablations`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::trained;
use usta_core::predictor::PredictionTarget;
use usta_core::{UstaGovernor, UstaPolicy};
use usta_governors::OnDemand;
use usta_ml::reptree::RepTreeParams;
use usta_ml::Learner;
use usta_sim::{run_workload, Device, Governor, RunConfig};
use usta_thermal::Celsius;
use usta_workloads::{Benchmark, PhasedWorkload, Workload};

#[derive(Debug)]
struct Slice(PhasedWorkload);

impl Workload for Slice {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn duration(&self) -> f64 {
        120.0
    }
    fn demand_at(&mut self, t: f64, dt: f64) -> usta_workloads::DeviceDemand {
        self.0.demand_at(t, dt)
    }
}

fn bench(c: &mut Criterion) {
    let limit = Celsius(37.0);
    let variants: Vec<(&str, UstaPolicy)> = vec![
        ("staircase", UstaPolicy::new(limit)),
        ("min_only", UstaPolicy::with_margins(limit, 2.0, 2.0, 2.0)),
        ("gentle_cap", UstaPolicy::with_margins(limit, 4.0, 2.0, 0.0)),
    ];
    let mut group = c.benchmark_group("ablation_policy_2min");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for (name, policy) in variants {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut device = Device::with_seed(4).expect("default device builds");
                let mut workload = Slice(Benchmark::Skype.workload(4));
                let usta = UstaGovernor::new(
                    Box::new(OnDemand::default()),
                    trained(
                        &Learner::RepTree(RepTreeParams::default()),
                        PredictionTarget::Skin,
                    ),
                    policy,
                );
                let mut governor = Governor::Usta(Box::new(usta));
                black_box(run_workload(
                    &mut device,
                    &mut workload,
                    &mut governor,
                    &RunConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
