//! Substrate throughput: one 100 ms device step (SoC power + battery +
//! sub-stepped RC thermal integration), and a full observation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_sim::Device;
use usta_workloads::DeviceDemand;

fn bench(c: &mut Criterion) {
    let mut device = Device::with_seed(1).expect("default device builds");
    let demand = DeviceDemand {
        cpu_threads_khz: vec![1_200_000.0, 600_000.0, 300_000.0, 150_000.0],
        gpu_load: 0.5,
        display_on: true,
        brightness: 0.9,
        board_w: 0.8,
        charging: false,
    };
    let mut group = c.benchmark_group("device");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("step_100ms", |b| {
        b.iter(|| device.apply_level(black_box(&demand), 8, 0.1))
    });
    group.bench_function("observe", |b| b.iter(|| black_box(device.observe())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
