//! §4.A overhead claim: one skin/screen prediction per 3-second window.
//!
//! The paper measures 5.603 ms (skin) + 6.708 ms (screen) per window on
//! the Nexus 4 — ~0.4 % of the window. Natively the fitted trees answer
//! in nanoseconds–microseconds; the reproduced claim is that prediction
//! cost is negligible against the 3 s cadence for every learner.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::trained;
use usta_core::predictor::PredictionTarget;
use usta_core::FeatureVector;
use usta_ml::Learner;
use usta_thermal::Celsius;

fn features() -> FeatureVector {
    FeatureVector::single(Celsius(52.0), Celsius(36.0), 0.7, 1_134_000.0)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_overhead");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for learner in Learner::paper_set() {
        for target in [PredictionTarget::Skin, PredictionTarget::Screen] {
            let model = trained(&learner, target);
            let f = features();
            group.bench_function(format!("{}/{}", learner.name(), target.name()), |b| {
                b.iter(|| black_box(model.predict(black_box(&f))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
