//! Cadence ablation cost: the per-run price of predicting every 1 s vs
//! the paper's 3 s vs a lazy 30 s, over a 2-minute Skype slice.
//! (Control-quality numbers come from `repro_ablations`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::trained;
use usta_core::predictor::PredictionTarget;
use usta_core::{UstaGovernor, UstaPolicy};
use usta_governors::OnDemand;
use usta_ml::reptree::RepTreeParams;
use usta_ml::Learner;
use usta_sim::{run_workload, Device, Governor, RunConfig};
use usta_thermal::Celsius;
use usta_workloads::{Benchmark, PhasedWorkload, Workload};

#[derive(Debug)]
struct Slice(PhasedWorkload);

impl Workload for Slice {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn duration(&self) -> f64 {
        120.0
    }
    fn demand_at(&mut self, t: f64, dt: f64) -> usta_workloads::DeviceDemand {
        self.0.demand_at(t, dt)
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cadence_2min");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for period in [1.0, 3.0, 30.0] {
        group.bench_function(format!("period_{period}s"), |bench| {
            bench.iter(|| {
                let mut device = Device::with_seed(3).expect("default device builds");
                let mut workload = Slice(Benchmark::Skype.workload(3));
                let mut usta = UstaGovernor::new(
                    Box::new(OnDemand::default()),
                    trained(
                        &Learner::RepTree(RepTreeParams::default()),
                        PredictionTarget::Skin,
                    ),
                    UstaPolicy::new(Celsius(37.0)),
                );
                usta.set_prediction_period(period);
                let mut governor = Governor::Usta(Box::new(usta));
                black_box(run_workload(
                    &mut device,
                    &mut workload,
                    &mut governor,
                    &RunConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
