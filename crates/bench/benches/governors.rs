//! Governor decision cost: the baseline zoo vs the USTA stack
//! (decision path only; prediction runs on its own 3 s cadence),
//! tracked per catalog device — domain count and OPP-table depth are
//! the only inputs that can plausibly move a decide() cost, so each
//! device's topology gets its own benchmark id (`flagship-octa`
//! exercises the genuine two-domain path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::trained;
use usta_core::predictor::PredictionTarget;
use usta_core::{UstaGovernor, UstaPolicy};
use usta_governors::{
    Conservative, CpuGovernor, DomainSample, FreqDomain, GovernorInput, OnDemand, Performance,
};
use usta_ml::reptree::RepTreeParams;
use usta_ml::Learner;
use usta_thermal::Celsius;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("governor_decide");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for id in usta_device::NAMES {
        let spec = usta_device::by_id(id).expect("catalog id");
        let domains: Vec<FreqDomain> = spec
            .clusters
            .iter()
            .enumerate()
            .map(|(d, cluster)| FreqDomain {
                id: d,
                name: cluster.name,
                kind: usta_soc::DomainKind::CpuCluster,
                cores: cluster.cores,
                opp: usta_soc::spec::opp_table(spec, d).expect("catalog spec is valid"),
                full_load_w: cluster.full_load_w(),
            })
            .collect();
        let samples: Vec<DomainSample> = domains
            .iter()
            .map(|domain| DomainSample {
                avg_utilization: 0.63,
                max_utilization: 0.78,
                current_level: domain.max_index() / 2,
            })
            .collect();
        let caps: Vec<usize> = domains.iter().map(FreqDomain::max_index).collect();
        let input = GovernorInput {
            domains: &domains,
            samples: &samples,
            max_allowed_levels: &caps,
            die_temp_c: None,
        };
        let mut ondemand = OnDemand::default();
        group.bench_function(format!("ondemand/{id}"), |b| {
            b.iter(|| black_box(ondemand.decide(&input)))
        });
        let mut conservative = Conservative::default();
        group.bench_function(format!("conservative/{id}"), |b| {
            b.iter(|| black_box(conservative.decide(&input)))
        });
        let mut performance = Performance;
        group.bench_function(format!("performance/{id}"), |b| {
            b.iter(|| black_box(performance.decide(&input)))
        });
        let mut usta = UstaGovernor::new(
            Box::new(OnDemand::default()),
            trained(
                &Learner::RepTree(RepTreeParams::default()),
                PredictionTarget::Skin,
            ),
            UstaPolicy::new(Celsius(37.0)),
        );
        group.bench_function(format!("usta_wrapped_ondemand/{id}"), |b| {
            b.iter(|| black_box(usta.decide(&input)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
