//! Governor decision cost: the baseline zoo vs the USTA stack
//! (decision path only; prediction runs on its own 3 s cadence).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::trained;
use usta_core::predictor::PredictionTarget;
use usta_core::{UstaGovernor, UstaPolicy};
use usta_governors::{Conservative, CpuGovernor, GovernorInput, OnDemand, Performance};
use usta_ml::reptree::RepTreeParams;
use usta_ml::Learner;
use usta_soc::nexus4;
use usta_thermal::Celsius;

fn bench(c: &mut Criterion) {
    let opp = nexus4::opp_table();
    let input = GovernorInput {
        avg_utilization: 0.63,
        max_utilization: 0.78,
        current_level: 7,
        max_allowed_level: opp.max_index(),
        opp: &opp,
    };
    let mut group = c.benchmark_group("governor_decide");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let mut ondemand = OnDemand::default();
    group.bench_function("ondemand", |b| {
        b.iter(|| black_box(ondemand.decide(&input)))
    });
    let mut conservative = Conservative::default();
    group.bench_function("conservative", |b| {
        b.iter(|| black_box(conservative.decide(&input)))
    });
    let mut performance = Performance;
    group.bench_function("performance", |b| {
        b.iter(|| black_box(performance.decide(&input)))
    });
    let mut usta = UstaGovernor::new(
        Box::new(OnDemand::default()),
        trained(
            &Learner::RepTree(RepTreeParams::default()),
            PredictionTarget::Skin,
        ),
        UstaPolicy::new(Celsius(37.0)),
    );
    group.bench_function("usta_wrapped_ondemand", |b| {
        b.iter(|| black_box(usta.decide(&input)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
