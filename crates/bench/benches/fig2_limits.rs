//! Figure 2 harness cost: a 3-minute USTA Skype slice at three comfort
//! limits (full 11-limit sweep comes from `repro_fig2`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_bench::trained;
use usta_core::predictor::PredictionTarget;
use usta_core::{UstaGovernor, UstaPolicy};
use usta_governors::OnDemand;
use usta_ml::reptree::RepTreeParams;
use usta_ml::Learner;
use usta_sim::{run_workload, Device, Governor, RunConfig};
use usta_thermal::Celsius;
use usta_workloads::{Benchmark, PhasedWorkload, Workload};

#[derive(Debug)]
struct Slice(PhasedWorkload);

impl Workload for Slice {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn duration(&self) -> f64 {
        180.0
    }
    fn demand_at(&mut self, t: f64, dt: f64) -> usta_workloads::DeviceDemand {
        self.0.demand_at(t, dt)
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_usta_skype_slice");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for limit in [34.0, 37.0, 42.8] {
        group.bench_function(format!("limit_{limit}"), |bench| {
            bench.iter(|| {
                let mut device = Device::with_seed(2).expect("default device builds");
                let mut workload = Slice(Benchmark::Skype.workload(2));
                let usta = UstaGovernor::new(
                    Box::new(OnDemand::default()),
                    trained(
                        &Learner::RepTree(RepTreeParams::default()),
                        PredictionTarget::Skin,
                    ),
                    UstaPolicy::new(Celsius(limit)),
                );
                let mut governor = Governor::Usta(Box::new(usta));
                black_box(run_workload(
                    &mut device,
                    &mut workload,
                    &mut governor,
                    &RunConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
