//! Thermal-topology stepping cost per device: one 100 ms
//! `DeviceThermalModel` step (sub-stepped RC integration) for every
//! catalog device, so the per-node cost of growing topologies (7 nodes
//! on single-cluster phones up to 9 on prime-flagship) is tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_thermal::{DeviceThermalModel, HeatLoad, ThermalBatch};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_step");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for id in usta_device::NAMES {
        let spec = usta_device::by_id(id).expect("catalog id");
        let mut model =
            DeviceThermalModel::new(spec.thermal.topology()).expect("catalog topology builds");
        let dies = model.topology().dies();
        model.set_heat(HeatLoad {
            die_w: (0..dies).map(|d| 1.5 / (d + 1) as f64).collect(),
            gpu_w: 1.0,
            display_w: 0.8,
            battery_w: 0.2,
            board_w: 0.3,
        });
        group.bench_function(format!("step_100ms/{id}"), |b| {
            b.iter(|| black_box(&mut model).step(0.1))
        });
    }

    // The fleet runner's batched path: LANES same-device models advance
    // together through one structure-of-arrays Euler pass. Reported
    // per batch step, so dividing by LANES gives the per-lane cost to
    // compare against the scalar rows above.
    const LANES: usize = 8;
    for id in usta_device::NAMES {
        let spec = usta_device::by_id(id).expect("catalog id");
        let mut models: Vec<DeviceThermalModel> = (0..LANES)
            .map(|lane| {
                let mut model = DeviceThermalModel::new(spec.thermal.topology())
                    .expect("catalog topology builds");
                let dies = model.topology().dies();
                model.set_heat(HeatLoad {
                    die_w: (0..dies).map(|d| 1.5 / (d + lane + 1) as f64).collect(),
                    gpu_w: 1.0,
                    display_w: 0.8,
                    battery_w: 0.2,
                    board_w: 0.3,
                });
                model
            })
            .collect();
        let mut batch = {
            let refs: Vec<&DeviceThermalModel> = models.iter().collect();
            ThermalBatch::try_new(&refs).expect("same-structure lanes batch")
        };
        let dts = [0.1; LANES];
        group.bench_function(format!("batch_step_100ms/{id}x{LANES}"), |b| {
            b.iter(|| {
                let mut refs: Vec<&mut DeviceThermalModel> = models.iter_mut().collect();
                for model in refs.iter_mut() {
                    model.prepare_step();
                }
                batch.step(black_box(&mut refs), &dts);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
