//! Catalog-loading cost: parsing + full `DeviceSpec::validate` for one
//! device file, and a whole committed-directory load (six devices plus
//! a grid). Loading happens once per CLI invocation, but a fleet
//! orchestrator resolving hundreds of device files cares about the
//! per-file cost staying flat as the format grows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;
use usta_catalog::{device_to_toml, parse_device, Catalog};

/// The committed catalog directory at the repository root.
fn committed_catalog_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../catalog")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_load");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    // Per-file parse+validate, from in-memory text: the paper's device
    // (smallest file) and the three-domain prime-flagship (largest).
    for id in ["nexus4", "prime-flagship"] {
        let spec = usta_device::by_id(id).expect("built-in id");
        let text = device_to_toml(spec);
        group.bench_function(format!("parse_device/{id}"), |b| {
            b.iter(|| parse_device(black_box(&text)).expect("round-trips"))
        });
    }

    // Serialization alone, for the round-trip's other half.
    let spec = usta_device::by_id("prime-flagship").expect("built-in id");
    group.bench_function("device_to_toml/prime-flagship", |b| {
        b.iter(|| device_to_toml(black_box(spec)))
    });

    // The full committed directory: read_dir + six device parses +
    // grid parse + validation — what `--catalog catalog/` costs a CLI.
    let dir = committed_catalog_dir();
    group.bench_function("load_dir/committed", |b| {
        b.iter(|| Catalog::load_dir(black_box(&dir)).expect("committed catalog loads"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
