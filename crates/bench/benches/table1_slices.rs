//! Table 1 harness cost: 60-second slices of each benchmark under the
//! baseline governor (full rows come from `repro_table1`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_governors::OnDemand;
use usta_sim::{run_workload, Device, Governor, RunConfig};
use usta_workloads::{Benchmark, PhasedWorkload, Workload};

/// A 60-second window of a benchmark.
#[derive(Debug)]
struct Slice(PhasedWorkload);

impl Workload for Slice {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn duration(&self) -> f64 {
        60.0
    }
    fn demand_at(&mut self, t: f64, dt: f64) -> usta_workloads::DeviceDemand {
        self.0.demand_at(t, dt)
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_slice_60s");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for b in Benchmark::ALL {
        group.bench_function(b.name(), |bench| {
            bench.iter(|| {
                let mut device = Device::with_seed(1).expect("default device builds");
                let mut workload = Slice(b.workload(1));
                let mut governor = Governor::Baseline(Box::new(OnDemand::default()));
                black_box(run_workload(
                    &mut device,
                    &mut workload,
                    &mut governor,
                    &RunConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
