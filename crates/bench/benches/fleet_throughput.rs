//! Fleet sweep throughput: simulated user-seconds per wall-second at
//! 1, 2, and 4 worker threads.
//!
//! The figure of merit for the population-scale engine is how much
//! simulated fleet time one wall-clock second buys — scaling it with
//! threads is the whole point of the chunked runner, and determinism
//! means the *work* is identical at every thread count, so the ratio
//! between the 1-/2-/4-thread timings is pure parallel efficiency.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use usta_fleet::{run_sweep, SweepConfig};
use usta_workloads::Benchmark;

fn bench_config(threads: usize) -> SweepConfig {
    SweepConfig {
        users: 8,
        threads,
        seed: 42,
        max_sim_seconds: 30.0,
        predictor_pool: 2,
        training_benchmarks: vec![Benchmark::GfxBench],
        training_cap_seconds: 60.0,
        chunk_size: 4,
        smoke: true,
        ..SweepConfig::default()
    }
}

fn fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for threads in [1usize, 2, 4] {
        let config = bench_config(threads);
        let sim_seconds = {
            // One warm-up sweep also reports the figure of merit the
            // ISSUE asks for: simulated user-seconds per wall-second.
            let started = std::time::Instant::now();
            let report = run_sweep(&config).expect("bench sweep runs");
            let wall = started.elapsed().as_secs_f64();
            println!(
                "fleet_throughput/{threads}t: {:.0} simulated user-seconds per wall-second",
                report.aggregate.sim_seconds / wall
            );
            report.aggregate.sim_seconds
        };
        assert!(sim_seconds > 0.0);
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| run_sweep(&config).expect("bench sweep runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, fleet_throughput);
criterion_main!(benches);
