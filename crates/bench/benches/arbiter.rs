//! Power-budget arbiter cost per catalog device: the arbiter runs
//! inside every USTA decision on system-level devices, so its cost
//! must stay far below the 100 ms governor period. Domain count and
//! OPP-table depth drive the greedy allocation loop, so each device's
//! topology gets its own benchmark id; the band sets how much of the
//! ladder the loop climbs, so the widest (Unrestricted) and tightest
//! (MinimumFrequency) budgets bracket the cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_core::arbitrate;
use usta_core::policy::FrequencyCap;
use usta_governors::FreqDomain;
use usta_sim::{Device, DeviceConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for id in usta_device::NAMES {
        let device = Device::new(DeviceConfig::for_device_id(id).expect("catalog id"))
            .expect("catalog device builds");
        let domains: Vec<FreqDomain> = device.freq_domains();
        let demand: Vec<f64> = domains
            .iter()
            .enumerate()
            .map(|(d, _)| 0.35 + 0.15 * d as f64)
            .collect();
        for (band_name, band) in [
            ("unrestricted", FrequencyCap::Unrestricted),
            ("one_below", FrequencyCap::OneLevelBelowMax),
            ("minimum", FrequencyCap::MinimumFrequency),
        ] {
            group.bench_function(format!("{band_name}/{id}"), |b| {
                b.iter(|| {
                    black_box(arbitrate(
                        black_box(band),
                        black_box(&domains),
                        black_box(&demand),
                        black_box(Some(55.0)),
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
