//! Proof that the disabled telemetry sink is a true no-op.
//!
//! Nothing in this process ever calls `usta_telemetry::enable()`, so
//! every instrumented site in the sim stack runs its disabled path:
//! one relaxed atomic load behind `Sink::active()`, then nothing. The
//! full-run bench pins the end-to-end per-step cost with the sink off;
//! the two micro-benches show the guarded counter loop costs the same
//! as a bare integer loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usta_governors::OnDemand;
use usta_sim::{run_workload, run_workload_recorded, Device, Governor, RunConfig};
use usta_telemetry::{DecisionEvent, FlightRecorder};
use usta_workloads::{Benchmark, PhasedWorkload, Workload};

/// A 10-second slice of the Skype phase mix: long enough to exercise
/// every instrumented site, short enough for a tight bench loop.
#[derive(Debug)]
struct Slice(PhasedWorkload);

impl Workload for Slice {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn duration(&self) -> f64 {
        10.0
    }
    fn demand_at(&mut self, t: f64, dt: f64) -> usta_workloads::DeviceDemand {
        self.0.demand_at(t, dt)
    }
}

fn bench(c: &mut Criterion) {
    assert!(
        !usta_telemetry::enabled(),
        "this bench must run with the telemetry sink disabled"
    );
    let mut group = c.benchmark_group("telemetry_overhead");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    group.bench_function("run_10s_disabled_sink", |bench| {
        bench.iter(|| {
            let mut device = Device::with_seed(7).expect("default device builds");
            let mut workload = Slice(Benchmark::Skype.workload(7));
            let mut governor = Governor::Baseline(Box::new(OnDemand::default()));
            black_box(run_workload(
                &mut device,
                &mut workload,
                &mut governor,
                &RunConfig::default(),
            ))
        })
    });

    // The flight recorder's disabled path is one `Option` check per
    // step: this run must cost the same as `run_10s_disabled_sink`.
    group.bench_function("run_10s_disabled_recorder", |bench| {
        bench.iter(|| {
            let mut device = Device::with_seed(7).expect("default device builds");
            let mut workload = Slice(Benchmark::Skype.workload(7));
            let mut governor = Governor::Baseline(Box::new(OnDemand::default()));
            black_box(run_workload_recorded(
                &mut device,
                &mut workload,
                &mut governor,
                &RunConfig::default(),
                None,
            ))
        })
    });

    // Recording itself: one Copy into preallocated ring storage.
    group.bench_function("flight_ring_record", |bench| {
        let mut ring = FlightRecorder::new(512);
        let event = DecisionEvent::new(0, 0.0, 4);
        bench.iter(|| {
            for w in 0..10_000u64 {
                let mut e = black_box(event);
                e.window = w;
                ring.record(e);
            }
            black_box(ring.recorded())
        })
    });

    group.bench_function("counter_loop_raw", |bench| {
        bench.iter(|| {
            let mut total = 0u64;
            for i in 0..10_000u64 {
                total = total.wrapping_add(black_box(i));
            }
            black_box(total)
        })
    });

    group.bench_function("counter_loop_disabled_sink", |bench| {
        bench.iter(|| {
            let mut total = 0u64;
            for i in 0..10_000u64 {
                if let Some(registry) = usta_telemetry::Sink::active() {
                    registry.counter("bench.never").increment();
                }
                total = total.wrapping_add(black_box(i));
            }
            black_box(total)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
