//! Property-based tests for workload-generator invariants.

use proptest::prelude::*;
use usta_workloads::{Benchmark, Workload};

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Demands stay physical for any benchmark, seed, and query time:
    /// non-negative CPU, GPU in [0,1], brightness in [0,1].
    #[test]
    fn demands_are_physical(b in any_benchmark(), seed in 0u64..500, t in 0.0f64..6000.0) {
        let mut w = b.workload(seed);
        let d = w.demand_at(t, 0.1);
        prop_assert!(d.cpu_threads_khz.iter().all(|&k| (0.0..4e6).contains(&k)));
        prop_assert!((0.0..=1.0).contains(&d.gpu_load));
        prop_assert!((0.0..=1.0).contains(&d.brightness));
        prop_assert!(d.board_w >= 0.0 && d.board_w < 5.0);
    }

    /// After the declared duration every workload goes idle.
    #[test]
    fn idle_after_duration(b in any_benchmark(), seed in 0u64..500, extra in 0.0f64..1e5) {
        let mut w = b.workload(seed);
        let d = w.demand_at(w.duration() + extra, 0.1);
        prop_assert_eq!(d.total_cpu_khz(), 0.0);
        prop_assert!(!d.display_on);
        prop_assert!(!d.charging);
    }

    /// Two same-seed instances replay identically over a time grid.
    #[test]
    fn same_seed_replays(b in any_benchmark(), seed in 0u64..500) {
        let mut a = b.workload(seed);
        let mut c = b.workload(seed);
        for i in 0..100 {
            let t = i as f64 * 1.7;
            prop_assert_eq!(a.demand_at(t, 0.1), c.demand_at(t, 0.1));
        }
    }

    /// Jitter is bounded: the demand at any instant stays within ±10 %
    /// of some phase's nominal total (the configured jitter is 8 %).
    #[test]
    fn jitter_stays_bounded(b in any_benchmark(), seed in 0u64..500, t in 0.0f64..1700.0) {
        let mut jittered = b.workload(seed);
        let t = t.min(b.duration() - 1.0).max(0.0);
        let got = jittered.demand_at(t, 0.1).total_cpu_khz();
        // Reconstruct the nominal phase totals from a zero-jitter clone
        // of the phase structure (phase_at is public on PhasedWorkload).
        let nominal = jittered.phase_at(t).demand.total_cpu_khz();
        prop_assert!(
            got >= nominal * 0.9 - 1e-6 && got <= nominal * 1.1 + 1e-6,
            "jittered total {got} vs nominal {nominal}"
        );
    }
}
