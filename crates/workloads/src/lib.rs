//! # usta-workloads — the paper's 13 benchmarks as synthetic workloads
//!
//! The USTA paper (Egilmez et al., DATE 2015) collects its training data
//! and runs its evaluation over thirteen Android benchmarks: the AnTuTu
//! Benchmark Set and three customized derivatives, a 1.5-hour AnTuTu CPU
//! run, AnTuTu Tester, GFXBench, Vellamo, a Skype video call, YouTube
//! playback, video recording, charging, and a game (*The Legend of Holy
//! Archer*). None of those APKs can run here, but the device model only
//! ever observes their *demand signature*: how many CPU cycles each
//! thread wants, how busy the GPU is, whether the display/camera/radio
//! are on, and whether the charger is attached.
//!
//! This crate reproduces each benchmark as a phase-structured demand
//! generator with seeded jitter. The signatures are calibrated so the
//! baseline `ondemand` governor reproduces the per-benchmark ordering of
//! peak temperatures and average frequencies in the paper's Table 1.
//!
//! ```
//! use usta_workloads::{Benchmark, Workload};
//!
//! let mut skype = Benchmark::Skype.workload(42);
//! assert_eq!(skype.duration(), 1800.0); // the paper's half-hour call
//! let d = skype.demand_at(10.0, 0.1);
//! assert!(d.display_on);
//! assert!(d.cpu_threads_khz.iter().sum::<f64>() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmarks;
pub mod demand;
pub mod phase;
pub mod synthetic;

pub use benchmarks::Benchmark;
pub use demand::DeviceDemand;
pub use phase::{Phase, PhasedWorkload};
pub use synthetic::{ConstantLoad, PeriodicBurst, RampLoad};

/// A workload: a finite-duration generator of device demand.
///
/// Implementations must be deterministic for a given construction seed —
/// two identically-seeded workloads queried at the same `(t, dt)`
/// sequence produce identical demand, which is what makes every
/// experiment in the reproduction replayable.
pub trait Workload: std::fmt::Debug {
    /// Human-readable name (used in tables and traces).
    fn name(&self) -> &str;

    /// Total duration in seconds.
    fn duration(&self) -> f64;

    /// The demand over the window `[t, t + dt)` seconds into the run.
    ///
    /// `t` past [`duration`](Self::duration) must return an idle demand
    /// (screen off, no load) — runners may overshoot by a window.
    fn demand_at(&mut self, t: f64, dt: f64) -> DeviceDemand;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        // The experiment runner stores workloads as boxed trait objects.
        fn assert_object(_w: &dyn Workload) {}
        let w = ConstantLoad::new("x", 10.0, 500_000.0, 2);
        assert_object(&w);
    }
}
