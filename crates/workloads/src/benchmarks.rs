//! The thirteen paper benchmarks.
//!
//! Column order follows the paper's Table 1 (see DESIGN.md §3 for the
//! alignment evidence): *AnTuTu Full, AnTuTu CPU, AnTuTu CPU-GPU-RAM,
//! AnTuTu UserExp, AnTuTu CPU (1.5 h), AnTuTu Tester, GFXBench, Vellamo,
//! Skype, YouTube, Record, Charging, Game*.
//!
//! Each benchmark is a [`PhasedWorkload`] whose phase structure encodes
//! the app's demand signature: sustained multicore stress for the AnTuTu
//! CPU tests, GPU-bound frames for GFXBench, a continuous encode/decode
//! pipeline plus camera and radio for the Skype video call, charger heat
//! for Charging, and so on. Amplitudes are calibrated against the
//! baseline-governor results of Table 1.

use crate::demand::DeviceDemand;
use crate::phase::{Phase, PhasedWorkload};

/// Identifies one of the paper's thirteen benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names mirror the paper's Table 1 columns
pub enum Benchmark {
    AntutuFull,
    AntutuCpu,
    AntutuCpuGpuRam,
    AntutuUserExp,
    AntutuCpuLong,
    AntutuTester,
    GfxBench,
    Vellamo,
    Skype,
    Youtube,
    Record,
    Charging,
    Game,
}

impl Benchmark {
    /// All benchmarks in Table 1 column order.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::AntutuFull,
        Benchmark::AntutuCpu,
        Benchmark::AntutuCpuGpuRam,
        Benchmark::AntutuUserExp,
        Benchmark::AntutuCpuLong,
        Benchmark::AntutuTester,
        Benchmark::GfxBench,
        Benchmark::Vellamo,
        Benchmark::Skype,
        Benchmark::Youtube,
        Benchmark::Record,
        Benchmark::Charging,
        Benchmark::Game,
    ];

    /// Table 1 column index (0-based).
    pub fn column(self) -> usize {
        Benchmark::ALL
            .iter()
            .position(|b| *b == self)
            .expect("benchmark is in ALL")
    }

    /// Human-readable name as used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AntutuFull => "AnTuTu Full",
            Benchmark::AntutuCpu => "AnTuTu CPU",
            Benchmark::AntutuCpuGpuRam => "AnTuTu CPU-GPU-RAM",
            Benchmark::AntutuUserExp => "AnTuTu UserExp",
            Benchmark::AntutuCpuLong => "AnTuTu CPU 1.5h",
            Benchmark::AntutuTester => "AnTuTu Tester",
            Benchmark::GfxBench => "GFXBench",
            Benchmark::Vellamo => "Vellamo",
            Benchmark::Skype => "Skype",
            Benchmark::Youtube => "YouTube",
            Benchmark::Record => "Record",
            Benchmark::Charging => "Charging",
            Benchmark::Game => "Game",
        }
    }

    /// Run length in seconds. The paper pins Skype (0.5 h, §4.B) and the
    /// long AnTuTu CPU run (1.5 h); the rest use realistic app-session
    /// lengths.
    pub fn duration(self) -> f64 {
        match self {
            Benchmark::AntutuFull => 900.0,
            Benchmark::AntutuCpu => 600.0,
            Benchmark::AntutuCpuGpuRam => 360.0,
            Benchmark::AntutuUserExp => 480.0,
            Benchmark::AntutuCpuLong => 5400.0,
            Benchmark::AntutuTester => 720.0,
            Benchmark::GfxBench => 300.0,
            Benchmark::Vellamo => 420.0,
            Benchmark::Skype => 1800.0,
            Benchmark::Youtube => 900.0,
            Benchmark::Record => 600.0,
            Benchmark::Charging => 1800.0,
            Benchmark::Game => 900.0,
        }
    }

    /// Instantiates the workload with the given jitter seed.
    ///
    /// Different seeds model run-to-run variation of the same app (the
    /// paper's baseline and USTA sessions were separate runs).
    pub fn workload(self, seed: u64) -> PhasedWorkload {
        // Mix the benchmark index into the seed so co-seeded benchmarks
        // don't share a jitter stream.
        let seed = seed ^ (self.column() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        PhasedWorkload::new(self.name(), self.duration(), self.phases(), 0.08, seed)
    }

    fn phases(self) -> Vec<Phase> {
        match self {
            Benchmark::AntutuFull => vec![
                // Full suite cycles CPU → GPU → memory/UX → scoring.
                Phase::new(40.0, on_screen(&[1_500_000.0; 4], 0.10, 0.8, 0.35)),
                Phase::new(30.0, on_screen(&[500_000.0, 350_000.0], 0.90, 0.8, 0.35)),
                Phase::new(25.0, on_screen(&[750_000.0, 600_000.0], 0.30, 0.8, 0.35)),
                Phase::new(10.0, on_screen(&[200_000.0], 0.05, 0.8, 0.35)),
            ],
            Benchmark::AntutuCpu => vec![
                Phase::new(24.0, on_screen(&[1_500_000.0; 4], 0.05, 0.8, 0.35)),
                Phase::new(16.0, on_screen(&[300_000.0], 0.05, 0.8, 0.35)),
            ],
            Benchmark::AntutuCpuGpuRam => vec![
                Phase::new(24.0, on_screen(&[1_500_000.0, 1_500_000.0], 0.50, 0.8, 0.2)),
                Phase::new(10.0, on_screen(&[800_000.0, 800_000.0], 0.20, 0.8, 0.2)),
                Phase::new(6.0, on_screen(&[250_000.0], 0.05, 0.8, 0.2)),
            ],
            Benchmark::AntutuUserExp => vec![
                Phase::new(16.0, on_screen(&[850_000.0, 650_000.0], 0.35, 0.9, 0.75)),
                Phase::new(6.0, on_screen(&[1_500_000.0, 1_500_000.0], 0.20, 0.9, 0.75)),
                Phase::new(10.0, on_screen(&[400_000.0], 0.10, 0.9, 0.75)),
            ],
            Benchmark::AntutuCpuLong => vec![
                Phase::new(27.0, on_screen(&[1_500_000.0; 4], 0.05, 0.8, 0.35)),
                Phase::new(15.0, on_screen(&[300_000.0], 0.05, 0.8, 0.35)),
            ],
            Benchmark::AntutuTester => vec![
                // The stress app of the paper's user study: everything on.
                Phase::new(42.0, on_screen(&[1_500_000.0; 4], 0.95, 1.0, 0.6)),
                Phase::new(16.0, on_screen(&[350_000.0], 0.10, 1.0, 0.6)),
            ],
            Benchmark::GfxBench => vec![
                Phase::new(50.0, on_screen(&[450_000.0, 300_000.0], 0.95, 0.75, 0.10)),
                Phase::new(8.0, on_screen(&[900_000.0], 0.20, 0.75, 0.10)),
            ],
            Benchmark::Vellamo => vec![
                Phase::new(6.0, on_screen(&[1_350_000.0, 600_000.0], 0.25, 0.85, 0.25)),
                Phase::new(8.0, on_screen(&[700_000.0], 0.30, 0.85, 0.25)),
                Phase::new(6.0, on_screen(&[250_000.0], 0.05, 0.85, 0.25)),
            ],
            Benchmark::Skype => vec![
                // Continuous camera capture + encode + decode + network,
                // display at full brightness — the paper's hottest
                // long-running case.
                Phase::new(
                    28.0,
                    on_screen(
                        &[800_000.0, 620_000.0, 450_000.0, 330_000.0],
                        0.30,
                        1.0,
                        1.00,
                    ),
                ),
                Phase::new(2.0, on_screen(&[1_400_000.0, 800_000.0], 0.35, 1.0, 1.00)),
            ],
            Benchmark::Youtube => vec![
                // Hardware decode: light CPU, periodic buffer refills.
                Phase::new(25.0, on_screen(&[450_000.0, 180_000.0], 0.22, 0.6, 0.30)),
                Phase::new(3.0, on_screen(&[1_100_000.0, 400_000.0], 0.25, 0.7, 0.8)),
            ],
            Benchmark::Record => vec![
                // Camera ISP + encoder DSP dominate; CPU does muxing.
                Phase::new(
                    30.0,
                    on_screen(&[550_000.0, 400_000.0, 250_000.0], 0.25, 0.85, 1.90),
                ),
                Phase::new(3.0, on_screen(&[900_000.0], 0.25, 0.85, 1.90)),
            ],
            Benchmark::Charging => vec![
                // Screen-off idle on the charger with periodic syncs.
                Phase::new(55.0, charging_idle(&[120_000.0], 0.25)),
                Phase::new(5.0, charging_idle(&[700_000.0, 300_000.0], 0.45)),
            ],
            Benchmark::Game => vec![
                // The render thread saturates the big core (ondemand pegs
                // max); physics/audio threads ride along.
                Phase::new(
                    14.0,
                    on_screen(
                        &[1_250_000.0, 500_000.0, 250_000.0, 150_000.0],
                        0.65,
                        1.0,
                        0.5,
                    ),
                ),
                Phase::new(6.0, on_screen(&[700_000.0, 400_000.0], 0.50, 1.0, 0.5)),
                Phase::new(6.0, on_screen(&[250_000.0], 0.20, 1.0, 0.5)),
            ],
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Screen-on demand with the given threads (kHz), GPU load, brightness
/// and board power.
fn on_screen(threads_khz: &[f64], gpu: f64, brightness: f64, board_w: f64) -> DeviceDemand {
    DeviceDemand {
        cpu_threads_khz: threads_khz.to_vec(),
        gpu_load: gpu,
        display_on: true,
        brightness,
        board_w,
        charging: false,
    }
}

/// Screen-off demand on the charger.
fn charging_idle(threads_khz: &[f64], board_w: f64) -> DeviceDemand {
    DeviceDemand {
        cpu_threads_khz: threads_khz.to_vec(),
        gpu_load: 0.0,
        display_on: false,
        brightness: 0.0,
        board_w,
        charging: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn thirteen_benchmarks_like_the_paper() {
        assert_eq!(Benchmark::ALL.len(), 13);
    }

    #[test]
    fn columns_are_consistent() {
        for (i, b) in Benchmark::ALL.iter().enumerate() {
            assert_eq!(b.column(), i);
        }
        assert_eq!(Benchmark::Skype.column(), 8, "Skype must sit at index 8");
        assert_eq!(Benchmark::AntutuTester.column(), 5);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn paper_pinned_durations() {
        assert_eq!(Benchmark::Skype.duration(), 1800.0);
        assert_eq!(Benchmark::AntutuCpuLong.duration(), 5400.0);
    }

    #[test]
    fn workloads_build_and_produce_demand() {
        for b in Benchmark::ALL {
            let mut w = b.workload(7);
            assert_eq!(w.duration(), b.duration());
            assert_eq!(w.name(), b.name());
            let d = w.demand_at(1.0, 0.1);
            assert!(d.total_cpu_khz() > 0.0, "{b} should demand some CPU at t=1");
        }
    }

    #[test]
    fn only_charging_charges() {
        for b in Benchmark::ALL {
            let mut w = b.workload(7);
            let d = w.demand_at(1.0, 0.1);
            assert_eq!(d.charging, b == Benchmark::Charging, "{b}");
        }
    }

    #[test]
    fn charging_is_screen_off_and_light() {
        let mut w = Benchmark::Charging.workload(7);
        let d = w.demand_at(1.0, 0.1);
        assert!(!d.display_on);
        assert!(d.total_cpu_khz() < 400_000.0);
    }

    #[test]
    fn tester_is_the_heaviest_sustained_load() {
        let mut tester = Benchmark::AntutuTester.workload(7);
        let mut youtube = Benchmark::Youtube.workload(7);
        // Average demand over a full cycle.
        let avg = |w: &mut crate::PhasedWorkload| {
            let n = 600;
            (0..n)
                .map(|i| w.demand_at(i as f64 * 0.1, 0.1).total_cpu_khz())
                .sum::<f64>()
                / n as f64
        };
        assert!(avg(&mut tester) > 3.0 * avg(&mut youtube));
    }

    #[test]
    fn skype_runs_camera_and_radio() {
        let mut w = Benchmark::Skype.workload(7);
        let d = w.demand_at(5.0, 0.1);
        assert!(d.board_w >= 0.9, "video call needs camera + radio power");
        assert_eq!(d.brightness, 1.0);
    }

    #[test]
    fn different_seeds_differ_but_same_seed_repeats() {
        let mut a = Benchmark::Skype.workload(1);
        let mut b = Benchmark::Skype.workload(1);
        let mut c = Benchmark::Skype.workload(2);
        let mut any_diff = false;
        for i in 0..200 {
            let t = i as f64;
            assert_eq!(a.demand_at(t, 1.0), b.demand_at(t, 1.0));
            if a.demand_at(t, 1.0) != c.demand_at(t, 1.0) {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn display_formats_name() {
        assert_eq!(format!("{}", Benchmark::Skype), "Skype");
    }
}
