//! What a workload asks of the device over one sampling window.

/// Demand over one sampling window.
///
/// This is the full interface between application behaviour and the
/// device model: compute wanted per thread, GPU busy fraction, display
/// and camera/radio activity, and charger attachment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDemand {
    /// Per-thread CPU demand in kHz of equivalent busy cycles. Threads
    /// beyond the core count fold onto cores round-robin.
    pub cpu_threads_khz: Vec<f64>,
    /// GPU busy fraction, 0–1.
    pub gpu_load: f64,
    /// Whether the panel is lit.
    pub display_on: bool,
    /// Backlight level, 0–1 (ignored while the panel is off).
    pub brightness: f64,
    /// Power drawn by board-level peripherals — camera ISP, radios,
    /// DSP — in watts, dissipated on the main board.
    pub board_w: f64,
    /// Whether a charger is attached during this window.
    pub charging: bool,
}

impl DeviceDemand {
    /// A fully idle device: screen off, no compute, unplugged.
    pub fn idle() -> DeviceDemand {
        DeviceDemand {
            cpu_threads_khz: vec![0.0],
            gpu_load: 0.0,
            display_on: false,
            brightness: 0.0,
            board_w: 0.0,
            charging: false,
        }
    }

    /// Total CPU demand across threads, kHz.
    pub fn total_cpu_khz(&self) -> f64 {
        self.cpu_threads_khz.iter().sum()
    }

    /// Returns a copy with every CPU/GPU demand scaled by `factor`
    /// (used for jitter). Board power and flags are unchanged.
    pub fn scaled(&self, factor: f64) -> DeviceDemand {
        let f = factor.max(0.0);
        DeviceDemand {
            cpu_threads_khz: self.cpu_threads_khz.iter().map(|d| d * f).collect(),
            gpu_load: (self.gpu_load * f).clamp(0.0, 1.0),
            ..self.clone()
        }
    }
}

impl Default for DeviceDemand {
    fn default() -> DeviceDemand {
        DeviceDemand::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_quiet() {
        let d = DeviceDemand::idle();
        assert_eq!(d.total_cpu_khz(), 0.0);
        assert!(!d.display_on);
        assert!(!d.charging);
        assert_eq!(d.gpu_load, 0.0);
    }

    #[test]
    fn scaling_scales_compute_only() {
        let d = DeviceDemand {
            cpu_threads_khz: vec![100.0, 200.0],
            gpu_load: 0.4,
            display_on: true,
            brightness: 0.7,
            board_w: 1.0,
            charging: true,
        };
        let s = d.scaled(1.5);
        assert_eq!(s.cpu_threads_khz, vec![150.0, 300.0]);
        assert!((s.gpu_load - 0.6).abs() < 1e-12);
        assert_eq!(s.board_w, 1.0);
        assert!(s.display_on && s.charging);
    }

    #[test]
    fn scaling_clamps_gpu_and_floors_factor() {
        let d = DeviceDemand {
            gpu_load: 0.8,
            ..DeviceDemand::idle()
        };
        assert_eq!(d.scaled(2.0).gpu_load, 1.0);
        assert_eq!(d.scaled(-1.0).gpu_load, 0.0);
    }
}
