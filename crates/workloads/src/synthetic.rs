//! Simple synthetic workloads for tests, examples, and governor
//! characterization (step responses, duty-cycle sweeps, ramps).

use crate::demand::DeviceDemand;
use crate::Workload;

/// Constant CPU demand on every core, screen on.
#[derive(Debug, Clone)]
pub struct ConstantLoad {
    name: String,
    duration: f64,
    per_core_khz: f64,
    cores: usize,
}

impl ConstantLoad {
    /// A constant `per_core_khz` demand on `cores` cores for
    /// `duration` seconds.
    pub fn new(name: &str, duration: f64, per_core_khz: f64, cores: usize) -> ConstantLoad {
        ConstantLoad {
            name: name.to_owned(),
            duration,
            per_core_khz: per_core_khz.max(0.0),
            cores: cores.max(1),
        }
    }
}

impl Workload for ConstantLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn demand_at(&mut self, t: f64, _dt: f64) -> DeviceDemand {
        if t >= self.duration {
            return DeviceDemand::idle();
        }
        DeviceDemand {
            cpu_threads_khz: vec![self.per_core_khz; self.cores],
            gpu_load: 0.0,
            display_on: true,
            brightness: 0.8,
            board_w: 0.1,
            charging: false,
        }
    }
}

/// A square wave: `busy_khz` for `busy_s`, then idle for `idle_s`.
///
/// The classic governor-characterization input: `ondemand`'s average
/// frequency on a burst train reveals its up/down asymmetry.
#[derive(Debug, Clone)]
pub struct PeriodicBurst {
    name: String,
    duration: f64,
    busy_s: f64,
    idle_s: f64,
    busy_khz: f64,
    cores: usize,
}

impl PeriodicBurst {
    /// Builds the burst train.
    ///
    /// # Panics
    ///
    /// Panics if `busy_s` or `idle_s` is not positive.
    pub fn new(
        name: &str,
        duration: f64,
        busy_s: f64,
        idle_s: f64,
        busy_khz: f64,
        cores: usize,
    ) -> PeriodicBurst {
        assert!(
            busy_s > 0.0 && idle_s > 0.0,
            "phase lengths must be positive"
        );
        PeriodicBurst {
            name: name.to_owned(),
            duration,
            busy_s,
            idle_s,
            busy_khz: busy_khz.max(0.0),
            cores: cores.max(1),
        }
    }

    /// Fraction of time spent busy.
    pub fn duty_cycle(&self) -> f64 {
        self.busy_s / (self.busy_s + self.idle_s)
    }
}

impl Workload for PeriodicBurst {
    fn name(&self) -> &str {
        &self.name
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn demand_at(&mut self, t: f64, _dt: f64) -> DeviceDemand {
        if t >= self.duration {
            return DeviceDemand::idle();
        }
        let phase = t.rem_euclid(self.busy_s + self.idle_s);
        let khz = if phase < self.busy_s {
            self.busy_khz
        } else {
            0.0
        };
        DeviceDemand {
            cpu_threads_khz: vec![khz; self.cores],
            gpu_load: 0.0,
            display_on: true,
            brightness: 0.8,
            board_w: 0.1,
            charging: false,
        }
    }
}

/// Demand ramping linearly from zero to `peak_khz` over the duration.
#[derive(Debug, Clone)]
pub struct RampLoad {
    name: String,
    duration: f64,
    peak_khz: f64,
    cores: usize,
}

impl RampLoad {
    /// A linear ramp to `peak_khz` per core.
    pub fn new(name: &str, duration: f64, peak_khz: f64, cores: usize) -> RampLoad {
        RampLoad {
            name: name.to_owned(),
            duration: duration.max(1e-9),
            peak_khz: peak_khz.max(0.0),
            cores: cores.max(1),
        }
    }
}

impl Workload for RampLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn demand_at(&mut self, t: f64, _dt: f64) -> DeviceDemand {
        if t >= self.duration {
            return DeviceDemand::idle();
        }
        let frac = (t / self.duration).clamp(0.0, 1.0);
        DeviceDemand {
            cpu_threads_khz: vec![self.peak_khz * frac; self.cores],
            gpu_load: 0.0,
            display_on: true,
            brightness: 0.8,
            board_w: 0.1,
            charging: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_load_is_constant() {
        let mut w = ConstantLoad::new("c", 10.0, 500_000.0, 4);
        let a = w.demand_at(1.0, 0.1);
        let b = w.demand_at(9.0, 0.1);
        assert_eq!(a, b);
        assert_eq!(a.cpu_threads_khz, vec![500_000.0; 4]);
    }

    #[test]
    fn burst_alternates() {
        let mut w = PeriodicBurst::new("b", 100.0, 2.0, 3.0, 1_000_000.0, 1);
        assert!(w.demand_at(1.0, 0.1).total_cpu_khz() > 0.0);
        assert_eq!(w.demand_at(3.0, 0.1).total_cpu_khz(), 0.0);
        assert!(w.demand_at(5.5, 0.1).total_cpu_khz() > 0.0);
        assert!((w.duty_cycle() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ramp_rises_monotonically() {
        let mut w = RampLoad::new("r", 10.0, 1_000_000.0, 1);
        let early = w.demand_at(1.0, 0.1).total_cpu_khz();
        let late = w.demand_at(9.0, 0.1).total_cpu_khz();
        assert!(late > early);
        assert!((w.demand_at(5.0, 0.1).total_cpu_khz() - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn all_idle_after_duration() {
        let mut c = ConstantLoad::new("c", 10.0, 500_000.0, 4);
        let mut b = PeriodicBurst::new("b", 10.0, 1.0, 1.0, 500_000.0, 1);
        let mut r = RampLoad::new("r", 10.0, 500_000.0, 1);
        assert_eq!(c.demand_at(10.0, 0.1), DeviceDemand::idle());
        assert_eq!(b.demand_at(11.0, 0.1), DeviceDemand::idle());
        assert_eq!(r.demand_at(12.0, 0.1), DeviceDemand::idle());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn burst_rejects_zero_phase() {
        let _ = PeriodicBurst::new("bad", 10.0, 0.0, 1.0, 1.0, 1);
    }
}
