//! Phase-structured workloads: the building block for all 13 benchmarks.
//!
//! Real Android benchmarks cycle through sub-tests (AnTuTu runs CPU,
//! then memory, then UX…); interactive apps alternate burst and idle.
//! [`PhasedWorkload`] models this as a repeating sequence of [`Phase`]s,
//! each with its own demand template, plus seeded multiplicative jitter
//! re-drawn once per second so the `ondemand` governor sees realistic
//! utilization wander rather than a perfectly flat line.

use crate::demand::DeviceDemand;
use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One phase of a workload: a demand template held for a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// How long the phase lasts, seconds.
    pub seconds: f64,
    /// The demand issued throughout the phase (before jitter).
    pub demand: DeviceDemand,
}

impl Phase {
    /// Convenience constructor.
    pub fn new(seconds: f64, demand: DeviceDemand) -> Phase {
        Phase { seconds, demand }
    }
}

/// A named, finite workload cycling through phases with seeded jitter.
///
/// ```
/// use usta_workloads::{DeviceDemand, Phase, PhasedWorkload, Workload};
///
/// let busy = DeviceDemand {
///     cpu_threads_khz: vec![1_000_000.0; 4],
///     display_on: true,
///     brightness: 1.0,
///     ..DeviceDemand::idle()
/// };
/// let mut w = PhasedWorkload::new("stress", 60.0, vec![Phase::new(10.0, busy)], 0.1, 7);
/// let d = w.demand_at(3.0, 0.1);
/// assert!(d.total_cpu_khz() > 3_000_000.0); // ±10 % jitter around 4 M
/// ```
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    name: String,
    duration: f64,
    phases: Vec<Phase>,
    cycle_len: f64,
    jitter: f64,
    rng: ChaCha8Rng,
    current_jitter: f64,
    jitter_drawn_at: f64,
}

impl PhasedWorkload {
    /// Builds a workload that cycles `phases` for `duration` seconds,
    /// with multiplicative demand jitter uniform in `1 ± jitter`,
    /// re-drawn once per simulated second from a stream seeded by
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any phase is non-positive in length,
    /// or `jitter` is not within `[0, 1)`.
    pub fn new(
        name: &str,
        duration: f64,
        phases: Vec<Phase>,
        jitter: f64,
        seed: u64,
    ) -> PhasedWorkload {
        assert!(!phases.is_empty(), "workload needs at least one phase");
        assert!(
            phases
                .iter()
                .all(|p| p.seconds > 0.0 && p.seconds.is_finite()),
            "phase lengths must be positive"
        );
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        let cycle_len = phases.iter().map(|p| p.seconds).sum();
        PhasedWorkload {
            name: name.to_owned(),
            duration,
            phases,
            cycle_len,
            jitter,
            rng: ChaCha8Rng::seed_from_u64(seed),
            current_jitter: 1.0,
            jitter_drawn_at: f64::NEG_INFINITY,
        }
    }

    /// The phase active at time `t` (cycling).
    pub fn phase_at(&self, t: f64) -> &Phase {
        let mut offset = t.rem_euclid(self.cycle_len);
        for p in &self.phases {
            if offset < p.seconds {
                return p;
            }
            offset -= p.seconds;
        }
        // Floating-point edge: fall back to the last phase.
        self.phases.last().expect("phases is non-empty")
    }

    /// The phases of this workload.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }
}

impl Workload for PhasedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn duration(&self) -> f64 {
        self.duration
    }

    fn demand_at(&mut self, t: f64, _dt: f64) -> DeviceDemand {
        if t >= self.duration {
            return DeviceDemand::idle();
        }
        if self.jitter > 0.0 && t - self.jitter_drawn_at >= 1.0 {
            self.current_jitter = 1.0 + self.rng.gen_range(-self.jitter..=self.jitter);
            self.jitter_drawn_at = t;
        }
        let base = &self.phase_at(t).demand;
        if self.jitter > 0.0 {
            base.scaled(self.current_jitter)
        } else {
            base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> PhasedWorkload {
        let heavy = DeviceDemand {
            cpu_threads_khz: vec![1_000_000.0],
            ..DeviceDemand::idle()
        };
        let light = DeviceDemand {
            cpu_threads_khz: vec![100_000.0],
            ..DeviceDemand::idle()
        };
        PhasedWorkload::new(
            "alt",
            100.0,
            vec![Phase::new(10.0, heavy), Phase::new(5.0, light)],
            0.0,
            1,
        )
    }

    #[test]
    fn phases_cycle() {
        let w = two_phase();
        assert_eq!(w.phase_at(0.0).demand.cpu_threads_khz[0], 1_000_000.0);
        assert_eq!(w.phase_at(9.9).demand.cpu_threads_khz[0], 1_000_000.0);
        assert_eq!(w.phase_at(10.1).demand.cpu_threads_khz[0], 100_000.0);
        assert_eq!(w.phase_at(14.9).demand.cpu_threads_khz[0], 100_000.0);
        // Next cycles: 15.1 → 0.1 (heavy), 40.0 → 10.0 (light), 45.1 → 0.1.
        assert_eq!(w.phase_at(15.1).demand.cpu_threads_khz[0], 1_000_000.0);
        assert_eq!(w.phase_at(40.0).demand.cpu_threads_khz[0], 100_000.0);
        assert_eq!(w.phase_at(45.1).demand.cpu_threads_khz[0], 1_000_000.0);
    }

    #[test]
    fn past_duration_is_idle() {
        let mut w = two_phase();
        assert_eq!(w.demand_at(100.0, 0.1), DeviceDemand::idle());
        assert_eq!(w.demand_at(1e9, 0.1), DeviceDemand::idle());
    }

    #[test]
    fn zero_jitter_is_exact() {
        let mut w = two_phase();
        let d = w.demand_at(1.0, 0.1);
        assert_eq!(d.cpu_threads_khz[0], 1_000_000.0);
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let mk = || {
            let demand = DeviceDemand {
                cpu_threads_khz: vec![1_000_000.0],
                ..DeviceDemand::idle()
            };
            PhasedWorkload::new("j", 1000.0, vec![Phase::new(10.0, demand)], 0.2, 42)
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..500 {
            let t = i as f64;
            let da = a.demand_at(t, 1.0);
            let db = b.demand_at(t, 1.0);
            assert_eq!(da, db, "same seed must give same demand");
            let v = da.cpu_threads_khz[0];
            assert!(
                (800_000.0..=1_200_000.0).contains(&v),
                "jitter out of band: {v}"
            );
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let demand = DeviceDemand {
            cpu_threads_khz: vec![1_000_000.0],
            ..DeviceDemand::idle()
        };
        let mut w = PhasedWorkload::new("j", 1000.0, vec![Phase::new(10.0, demand)], 0.2, 42);
        let values: Vec<f64> = (0..100)
            .map(|i| w.demand_at(i as f64, 1.0).cpu_threads_khz[0])
            .collect();
        let distinct = values
            .iter()
            .map(|v| (v * 1000.0) as i64)
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(
            distinct > 10,
            "expected varied jitter, got {distinct} distinct values"
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let _ = PhasedWorkload::new("empty", 10.0, vec![], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn bad_jitter_panics() {
        let _ = PhasedWorkload::new(
            "bad",
            10.0,
            vec![Phase::new(1.0, DeviceDemand::idle())],
            1.5,
            1,
        );
    }
}
