//! Batched structure-of-arrays thermal stepping.
//!
//! A fleet sweep runs many *independent* copies of the same device
//! topology side by side. Stepping them one network at a time walks a
//! pointer-rich object per triple and re-derives the same structure
//! (node count, boundary flags, coupling order) every time. A
//! [`ThermalBatch`] instead lays the per-network state out as
//! contiguous *lanes*: for `L` networks of `n` nodes, temperatures,
//! powers, and derivatives live in one `n × L` lane-major buffer
//! (`value[node * L + lane]`), and a single sub-stepped forward-Euler
//! pass advances every lane with dense inner loops over the shared
//! structure.
//!
//! # Bit-identity contract
//!
//! For each lane the arithmetic is *exactly* the scalar kernel of
//! [`ThermalNetwork::step`]: the same three derivative passes in the
//! same order (ambient pull + power, couplings in builder order,
//! division — not reciprocal multiplication — by the heat capacity),
//! the same `remaining → min(remaining, max_step)` sub-step schedule
//! per lane, and the same `dt ≤ 0`/non-finite no-op guard. A lane
//! stepped through a batch therefore produces bit-identical
//! temperatures and elapsed time to stepping its model alone. Lanes
//! may carry different capacitances, conductances, ambients, and `dt`s
//! (a finished lane passes `dt = 0.0` and is untouched); only the
//! *structure* — node count, boundary flags, coupling endpoints — must
//! match, which [`ThermalBatch::try_new`] verifies.
//!
//! [`ThermalNetwork::step`]: crate::ThermalNetwork::step

use crate::integrator::IntegrationMethod;
use crate::topology::DeviceThermalModel;

/// A lane-major batch of structurally identical thermal networks that
/// advance together through one sub-stepped Euler pass.
///
/// Build one per group of same-device models with
/// [`try_new`](Self::try_new), then call [`step`](Self::step) once per
/// simulation step with the *same models in the same order*. The batch
/// owns all scratch storage, so a worker can reuse one allocation
/// across every step of a run.
#[derive(Debug)]
pub struct ThermalBatch {
    lanes: usize,
    nodes: usize,
    /// Shared structure: per-node boundary flag.
    boundary: Vec<bool>,
    /// Shared structure: coupling endpoints in builder order.
    pairs: Vec<(usize, usize)>,
    /// `[coupling * lanes + lane]` conductances.
    coupling_g: Vec<f64>,
    /// `[node * lanes + lane]` heat capacities.
    capacitance: Vec<f64>,
    /// `[node * lanes + lane]` ambient conductances.
    ambient_g: Vec<f64>,
    /// Per-lane Euler sub-step bound.
    max_step: Vec<f64>,
    /// `[node * lanes + lane]` temperatures (loaded per step).
    temps: Vec<f64>,
    /// `[node * lanes + lane]` power injections (loaded per step).
    power: Vec<f64>,
    /// `[node * lanes + lane]` derivative scratch.
    deriv: Vec<f64>,
    /// Per-lane ambient temperature (loaded per step — scenarios may
    /// move it between steps).
    ambient: Vec<f64>,
    /// Per-lane remaining time inside the current step.
    remaining: Vec<f64>,
    /// Per-lane sub-step size for the current Euler pass.
    h: Vec<f64>,
    /// Per-lane "this step is a real step" flag (the scalar no-op
    /// guard, evaluated per lane).
    active: Vec<bool>,
}

impl ThermalBatch {
    /// Builds a batch over structurally identical Euler-integrated
    /// models.
    ///
    /// Returns `None` when the slice is empty, any model integrates
    /// with RK4, or the models disagree on node count, boundary flags,
    /// or coupling endpoints/order — callers fall back to scalar
    /// stepping in that case.
    pub fn try_new(models: &[&DeviceThermalModel]) -> Option<ThermalBatch> {
        let first = models.first()?.network();
        if first.method() != IntegrationMethod::Euler {
            return None;
        }
        let nodes = first.node_count();
        let boundary: Vec<bool> = (0..nodes).map(|i| first.is_boundary(i)).collect();
        let pairs: Vec<(usize, usize)> =
            first.couplings().iter().map(|&(a, b, _)| (a, b)).collect();
        for model in &models[1..] {
            let net = model.network();
            if net.method() != IntegrationMethod::Euler
                || net.node_count() != nodes
                || (0..nodes).any(|i| net.is_boundary(i) != boundary[i])
                || net.couplings().len() != pairs.len()
                || net
                    .couplings()
                    .iter()
                    .zip(&pairs)
                    .any(|(&(a, b, _), &(x, y))| (a, b) != (x, y))
            {
                return None;
            }
        }

        let lanes = models.len();
        let mut coupling_g = vec![0.0; pairs.len() * lanes];
        let mut capacitance = vec![0.0; nodes * lanes];
        let mut ambient_g = vec![0.0; nodes * lanes];
        let mut max_step = vec![0.0; lanes];
        for (l, model) in models.iter().enumerate() {
            let net = model.network();
            for (c, &(_, _, g)) in net.couplings().iter().enumerate() {
                coupling_g[c * lanes + l] = g;
            }
            for i in 0..nodes {
                capacitance[i * lanes + l] = net.capacitances()[i];
                ambient_g[i * lanes + l] = net.ambient_conductances()[i];
            }
            max_step[l] = net.max_step();
        }

        Some(ThermalBatch {
            lanes,
            nodes,
            boundary,
            pairs,
            coupling_g,
            capacitance,
            ambient_g,
            max_step,
            temps: vec![0.0; nodes * lanes],
            power: vec![0.0; nodes * lanes],
            deriv: vec![0.0; nodes * lanes],
            ambient: vec![0.0; lanes],
            remaining: vec![0.0; lanes],
            h: vec![0.0; lanes],
            active: vec![false; lanes],
        })
    }

    /// Number of lanes (models) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of nodes per lane.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Advances each prepared model by its `dts` entry in one shared
    /// Euler pass.
    ///
    /// `models` must be the models the batch was built over, in the
    /// same order; power injections are read as-is, so stage each
    /// model first (e.g. with
    /// [`DeviceThermalModel::prepare_step`]). A lane whose `dt` fails
    /// the scalar no-op guard (`dt ≤ 0`, NaN, infinite) is left
    /// completely untouched, exactly like `step(dt)` on that model.
    ///
    /// # Panics
    ///
    /// Panics if `models` or `dts` disagree with the batch's lane
    /// count, or a model's node count no longer matches.
    pub fn step(&mut self, models: &mut [&mut DeviceThermalModel], dts: &[f64]) {
        assert_eq!(models.len(), self.lanes, "lane count mismatch");
        assert_eq!(dts.len(), self.lanes, "dt count mismatch");
        let lanes = self.lanes;

        // Load lane state (temperatures, powers, ambient) and evaluate
        // the scalar no-op guard per lane.
        for (l, model) in models.iter().enumerate() {
            let net = model.network();
            assert_eq!(net.node_count(), self.nodes, "node count mismatch");
            let dt = dts[l];
            let active =
                dt.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) && dt.is_finite();
            self.active[l] = active;
            self.remaining[l] = if active { dt } else { 0.0 };
            self.ambient[l] = net.ambient().value();
            let temps = net.temps_slice();
            let powers = net.powers();
            for i in 0..self.nodes {
                self.temps[i * lanes + l] = temps[i];
                self.power[i * lanes + l] = powers[i];
            }
        }

        // Shared sub-step loop: each lane follows exactly the scalar
        // `remaining → min(remaining, max_step)` schedule; lanes that
        // finish early idle with h = 0 and their state frozen.
        while self.remaining.iter().any(|&r| r > 0.0) {
            for l in 0..lanes {
                self.h[l] = if self.remaining[l] > 0.0 {
                    self.remaining[l].min(self.max_step[l])
                } else {
                    0.0
                };
            }
            self.derivatives();
            for i in 0..self.nodes {
                let base = i * lanes;
                for l in 0..lanes {
                    let h = self.h[l];
                    if h > 0.0 {
                        self.temps[base + l] += h * self.deriv[base + l];
                    }
                }
            }
            for l in 0..lanes {
                self.remaining[l] -= self.h[l];
            }
        }

        // Store temperatures back and credit elapsed time on the lanes
        // that actually stepped.
        for (l, model) in models.iter_mut().enumerate() {
            if !self.active[l] {
                continue;
            }
            let net = model.network_mut();
            let temps = net.temps_mut();
            for (i, temp) in temps.iter_mut().enumerate().take(self.nodes) {
                *temp = self.temps[i * lanes + l];
            }
            net.advance_elapsed(dts[l]);
        }
    }

    /// Lane-major replica of the scalar derivative kernel (see
    /// [`crate::network`]'s `derivatives_into`): three passes, coupling
    /// accumulation in builder order, division by the capacitance.
    fn derivatives(&mut self) {
        let lanes = self.lanes;
        for i in 0..self.nodes {
            let base = i * lanes;
            if self.boundary[i] {
                self.deriv[base..base + lanes].fill(0.0);
            } else {
                for l in 0..lanes {
                    self.deriv[base + l] = self.ambient_g[base + l]
                        * (self.ambient[l] - self.temps[base + l])
                        + self.power[base + l];
                }
            }
        }
        for (c, &(a, b)) in self.pairs.iter().enumerate() {
            let gbase = c * lanes;
            let abase = a * lanes;
            let bbase = b * lanes;
            match (self.boundary[a], self.boundary[b]) {
                (false, false) => {
                    for l in 0..lanes {
                        let flow = self.coupling_g[gbase + l]
                            * (self.temps[abase + l] - self.temps[bbase + l]);
                        self.deriv[bbase + l] += flow;
                        self.deriv[abase + l] -= flow;
                    }
                }
                (false, true) => {
                    for l in 0..lanes {
                        let flow = self.coupling_g[gbase + l]
                            * (self.temps[abase + l] - self.temps[bbase + l]);
                        self.deriv[abase + l] -= flow;
                    }
                }
                (true, false) => {
                    for l in 0..lanes {
                        let flow = self.coupling_g[gbase + l]
                            * (self.temps[abase + l] - self.temps[bbase + l]);
                        self.deriv[bbase + l] += flow;
                    }
                }
                (true, true) => {}
            }
        }
        for i in 0..self.nodes {
            if self.boundary[i] {
                continue;
            }
            let base = i * lanes;
            for l in 0..lanes {
                self.deriv[base + l] /= self.capacitance[base + l];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::PhoneThermalParams;
    use crate::topology::HeatLoad;
    use crate::units::Celsius;

    fn phone_model() -> DeviceThermalModel {
        DeviceThermalModel::new(PhoneThermalParams::default().topology()).unwrap()
    }

    fn assert_models_bit_equal(a: &DeviceThermalModel, b: &DeviceThermalModel) {
        let ta = a.network().temps_slice();
        let tb = b.network().temps_slice();
        for (i, (x, y)) in ta.iter().zip(tb).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "node {i}: {x} vs {y}");
        }
        assert_eq!(a.elapsed().to_bits(), b.elapsed().to_bits());
    }

    #[test]
    fn batched_lanes_are_bit_identical_to_scalar_steps() {
        let heats = [
            HeatLoad::single(3.1, 1.2, 0.9, 0.3, 0.2),
            HeatLoad::single(0.4, 0.1, 0.6, 0.1, 0.05),
            HeatLoad::single(5.0, 2.0, 1.1, 0.5, 0.4),
        ];
        let mut scalar: Vec<DeviceThermalModel> = heats.iter().map(|_| phone_model()).collect();
        let mut batched: Vec<DeviceThermalModel> = heats.iter().map(|_| phone_model()).collect();
        for (m, h) in scalar.iter_mut().zip(&heats) {
            m.set_heat(h.clone());
        }
        for (m, h) in batched.iter_mut().zip(&heats) {
            m.set_heat(h.clone());
        }
        scalar[1].set_hand_contact(true);
        batched[1].set_hand_contact(true);

        let mut batch =
            ThermalBatch::try_new(&batched.iter().collect::<Vec<_>>()).expect("same structure");
        assert_eq!(batch.lanes(), 3);
        for _ in 0..600 {
            for m in &mut scalar {
                m.step(0.1);
            }
            for m in &mut batched {
                m.prepare_step();
            }
            let mut refs: Vec<&mut DeviceThermalModel> = batched.iter_mut().collect();
            batch.step(&mut refs, &[0.1; 3]);
        }
        for (a, b) in scalar.iter().zip(&batched) {
            assert_models_bit_equal(a, b);
        }
    }

    #[test]
    fn zero_dt_lane_is_left_untouched() {
        let mut scalar = phone_model();
        let mut live = phone_model();
        let mut frozen = phone_model();
        for m in [&mut scalar, &mut live, &mut frozen] {
            m.set_heat(HeatLoad::single(2.0, 0.5, 0.7, 0.2, 0.1));
        }
        let mut batch = ThermalBatch::try_new(&[&live, &frozen]).unwrap();
        for _ in 0..50 {
            scalar.step(0.1);
            live.prepare_step();
            frozen.prepare_step();
            let mut refs: Vec<&mut DeviceThermalModel> = vec![&mut live, &mut frozen];
            batch.step(&mut refs, &[0.1, 0.0]);
        }
        assert_models_bit_equal(&scalar, &live);
        assert_eq!(frozen.elapsed(), 0.0);
        // The frozen lane never integrated: still at its initial state.
        let fresh = phone_model();
        for (a, b) in frozen
            .network()
            .temps_slice()
            .iter()
            .zip(fresh.network().temps_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn structure_mismatch_falls_back_to_none() {
        use crate::phone::HandContact;
        use crate::topology::{NodeRoles, ThermalNode, ThermalTopology};
        let phone = phone_model();
        assert!(ThermalBatch::try_new(&[]).is_none());

        // A two-node slab disagrees with the seven-node phone topology.
        let tiny = DeviceThermalModel::new(ThermalTopology {
            nodes: vec![
                ThermalNode {
                    name: "die".to_owned(),
                    capacitance: 1.0,
                },
                ThermalNode {
                    name: "case".to_owned(),
                    capacitance: 10.0,
                },
            ],
            couplings: vec![(0, 1, 1.0)],
            ambient_links: vec![(1, 0.2)],
            ambient: Celsius(25.0),
            initial: Celsius(25.0),
            hand: HandContact::default(),
            roles: NodeRoles {
                dies: vec![0],
                package: 1,
                gpu: None,
                board: 1,
                battery: 1,
                screen: 1,
                skin: 1,
                back: vec![1],
            },
        })
        .unwrap();
        assert!(ThermalBatch::try_new(&[&phone, &tiny]).is_none());
        // A homogeneous group of either still batches.
        assert!(ThermalBatch::try_new(&[&tiny]).is_some());
    }
}
