//! Calibrated smartphone thermal model.
//!
//! [`PhoneThermalModel`] instantiates a seven-node RC network shaped like
//! the paper's Nexus 4: CPU die, SoC package, main board, battery, back
//! cover (mid and upper sections — the two thermistor positions of the
//! paper), and screen. The **back-cover mid** node is the paper's "skin
//! temperature" (the spot users touch); the **screen** node is the
//! paper's "screen temperature".
//!
//! Default parameters are calibrated (see `usta-sim`'s calibration
//! experiment) so that the baseline-governor benchmark suite reproduces
//! the temperature *ranges* of the paper's Table 1: peak skin
//! temperatures from ~29 °C (light workloads) to ~43 °C (AnTuTu Tester /
//! Skype video call), multi-minute rise time constants, and screen
//! temperatures a few kelvin below the skin except for display-heavy
//! workloads.

use crate::error::ThermalError;
use crate::network::ThermalNetwork;
use crate::topology::{DeviceThermalModel, HeatLoad, NodeRoles, ThermalNode, ThermalTopology};
use crate::units::Celsius;

/// The physical locations modelled by [`PhoneThermalModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhoneNode {
    /// CPU die (the on-device "CPU temperature" sensor location).
    Cpu,
    /// SoC package (CPU + GPU + memory package and heat spreader).
    Package,
    /// Main PCB including PMIC, radios, camera ISP.
    Board,
    /// Battery pack (the on-device "battery temperature" sensor location).
    Battery,
    /// Middle of the back cover — the paper's **skin temperature**.
    BackMid,
    /// Upper back cover, over the SoC — the paper's second thermistor.
    BackUpper,
    /// Middle of the screen — the paper's **screen temperature**.
    Screen,
}

impl PhoneNode {
    /// All modelled locations, in network order.
    pub const ALL: [PhoneNode; 7] = [
        PhoneNode::Cpu,
        PhoneNode::Package,
        PhoneNode::Board,
        PhoneNode::Battery,
        PhoneNode::BackMid,
        PhoneNode::BackUpper,
        PhoneNode::Screen,
    ];

    /// Index of this node in [`PhoneNode::ALL`] — also the node's slot
    /// in [`PhoneThermalParams::capacitance`], so callers building
    /// modified phones (cases, accessories) can address it directly.
    ///
    /// Derived from the node's position in [`PhoneNode::ALL`] (the
    /// single source of truth for node order); a compile-time check
    /// below keeps the scan total.
    pub const fn index(self) -> usize {
        let mut i = 0;
        while i < PhoneNode::ALL.len() {
            if PhoneNode::ALL[i] as usize == self as usize {
                return i;
            }
            i += 1;
        }
        panic!("PhoneNode::ALL must list every variant")
    }

    /// Stable lower-case name (also the network node name).
    pub fn name(self) -> &'static str {
        match self {
            PhoneNode::Cpu => "cpu",
            PhoneNode::Package => "package",
            PhoneNode::Board => "board",
            PhoneNode::Battery => "battery",
            PhoneNode::BackMid => "back_mid",
            PhoneNode::BackUpper => "back_upper",
            PhoneNode::Screen => "screen",
        }
    }
}

// `index` scans `ALL`, so `ALL` is the single source of truth — this
// compile-time check guarantees the scan terminates for every variant
// (i.e. `ALL` is a permutation covering the whole enum).
const _: () = {
    let mut i = 0;
    while i < PhoneNode::ALL.len() {
        assert!(PhoneNode::ALL[i].index() == i, "ALL order disagrees");
        i += 1;
    }
};

/// Heat injected into the phone for the current step, in watts.
///
/// Produced by the SoC power model (`usta-soc`) each simulation step and
/// routed to the appropriate thermal nodes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HeatInput {
    /// CPU cores (dynamic + leakage) → die node.
    pub cpu_w: f64,
    /// GPU → package node.
    pub gpu_w: f64,
    /// Display panel and backlight → screen node.
    pub display_w: f64,
    /// Battery internal losses (discharge I²R or charging inefficiency)
    /// → battery node.
    pub battery_w: f64,
    /// Everything else on the main board: radios, camera ISP, memory,
    /// PMIC → board node.
    pub board_w: f64,
}

impl HeatInput {
    /// Total heat entering the device, in watts.
    pub fn total(&self) -> f64 {
        self.cpu_w + self.gpu_w + self.display_w + self.battery_w + self.board_w
    }
}

/// How a hand holds the phone.
///
/// A hand is close to a fixed-temperature reservoir (blood perfusion pins
/// the palm near 33.5 °C) that simultaneously *blocks* part of the back
/// cover's convective surface. The two effects nearly cancel at typical
/// operating temperatures — which is exactly the paper's §3.A finding
/// that touch barely changes exterior temperatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandContact {
    /// Palm temperature (°C). Human palms sit near 33–34 °C.
    pub palm_temperature: Celsius,
    /// Conductance of the palm–cover contact, W/K.
    pub contact_conductance: f64,
    /// Fraction of the back-mid ambient conductance blocked by the palm.
    pub blocked_fraction: f64,
}

impl Default for HandContact {
    fn default() -> HandContact {
        // Balanced so conduction to the palm cancels the blocked
        // convection near 40 °C — the operating region of an actively
        // used phone — reproducing the paper's "touch barely matters"
        // observation while still letting a palm warm a cold idle cover.
        HandContact {
            palm_temperature: Celsius(33.5),
            contact_conductance: 0.025,
            blocked_fraction: 0.12,
        }
    }
}

/// Parameters of the seven-node phone network.
///
/// All capacitances in J/K, conductances in W/K. The defaults are the
/// calibrated Nexus-4-like values used throughout the reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoneThermalParams {
    /// Heat capacity of each node, indexed like [`PhoneNode::ALL`].
    pub capacitance: [f64; 7],
    /// Internal couplings `(a, b, conductance)`.
    pub couplings: Vec<(PhoneNode, PhoneNode, f64)>,
    /// Ambient links `(node, conductance)`.
    pub ambient_links: Vec<(PhoneNode, f64)>,
    /// Ambient (room) temperature.
    pub ambient: Celsius,
    /// Initial temperature of every node.
    pub initial: Celsius,
    /// Hand model used when contact is enabled.
    pub hand: HandContact,
}

impl Default for PhoneThermalParams {
    fn default() -> PhoneThermalParams {
        use PhoneNode::*;
        PhoneThermalParams {
            // [cpu, package, board, battery, back_mid, back_upper, screen]
            capacitance: [1.2, 7.0, 30.0, 55.0, 10.0, 8.0, 26.0],
            couplings: vec![
                (Cpu, Package, 3.0),
                (Package, Board, 1.1),
                (Package, BackUpper, 0.30),
                (Board, Battery, 0.60),
                (Board, BackMid, 0.22),
                (Board, Screen, 0.12),
                (Battery, BackMid, 0.55),
                (Battery, Screen, 0.03),
                (BackUpper, BackMid, 0.10),
            ],
            ambient_links: vec![
                (BackMid, 0.075),
                (BackUpper, 0.055),
                (Screen, 0.130),
                (Board, 0.020),
                (Battery, 0.005),
            ],
            ambient: Celsius(24.0),
            initial: Celsius(28.0),
            hand: HandContact::default(),
        }
    }
}

impl PhoneThermalParams {
    /// Sum of all ambient conductances, W/K — the phone's total ability
    /// to shed heat to the room.
    pub fn total_ambient_conductance(&self) -> f64 {
        self.ambient_links.iter().map(|&(_, g)| g).sum()
    }

    /// Total heat capacity, J/K.
    pub fn total_capacitance(&self) -> f64 {
        self.capacitance.iter().sum()
    }

    /// These parameters as a data-driven [`ThermalTopology`]: the seven
    /// [`PhoneNode`]s in `ALL` order with the single `cpu` die node,
    /// `back_mid` as the skin, and the two back-cover nodes as the
    /// exterior. [`DeviceThermalModel`] built from this topology is
    /// bit-identical to [`PhoneThermalModel`] built from the params.
    pub fn topology(&self) -> ThermalTopology {
        use PhoneNode::*;
        ThermalTopology {
            nodes: PhoneNode::ALL
                .iter()
                .map(|n| ThermalNode {
                    name: n.name().to_owned(),
                    capacitance: self.capacitance[n.index()],
                })
                .collect(),
            couplings: self
                .couplings
                .iter()
                .map(|&(a, b, g)| (a.index(), b.index(), g))
                .collect(),
            ambient_links: self
                .ambient_links
                .iter()
                .map(|&(n, g)| (n.index(), g))
                .collect(),
            ambient: self.ambient,
            initial: self.initial,
            hand: self.hand,
            roles: NodeRoles {
                dies: vec![Cpu.index()],
                package: Package.index(),
                gpu: None,
                board: Board.index(),
                battery: Battery.index(),
                screen: Screen.index(),
                skin: BackMid.index(),
                back: vec![BackMid.index(), BackUpper.index()],
            },
        }
    }
}

/// A smartphone as a thermal object.
///
/// ```
/// use usta_thermal::{HeatInput, PhoneThermalModel, PhoneThermalParams};
///
/// # fn main() -> Result<(), usta_thermal::ThermalError> {
/// let mut phone = PhoneThermalModel::new(PhoneThermalParams::default())?;
/// phone.set_heat(HeatInput { cpu_w: 3.0, gpu_w: 1.0, display_w: 1.0, ..Default::default() });
/// phone.step(300.0); // five hot minutes
/// assert!(phone.skin_temperature() > phone.ambient());
/// assert!(phone.cpu_temperature() > phone.skin_temperature());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PhoneThermalModel {
    inner: DeviceThermalModel,
    params: PhoneThermalParams,
    heat: HeatInput,
}

impl PhoneThermalModel {
    /// Builds the network from `params` — the strict single-CPU special
    /// case of [`DeviceThermalModel`], via
    /// [`PhoneThermalParams::topology`].
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError`] from network construction (invalid
    /// capacitances, conductances, or temperatures).
    pub fn new(params: PhoneThermalParams) -> Result<PhoneThermalModel, ThermalError> {
        Ok(PhoneThermalModel {
            inner: DeviceThermalModel::new(params.topology())?,
            params,
            heat: HeatInput::default(),
        })
    }

    /// Sets the heat entering the phone; stays in effect until changed.
    pub fn set_heat(&mut self, heat: HeatInput) {
        self.heat = heat;
        self.inner.set_heat(HeatLoad::single(
            heat.cpu_w,
            heat.gpu_w,
            heat.display_w,
            heat.battery_w,
            heat.board_w,
        ));
    }

    /// Heat input currently applied.
    pub fn heat(&self) -> HeatInput {
        self.heat
    }

    /// Enables or disables palm contact on the back cover.
    pub fn set_hand_contact(&mut self, held: bool) {
        self.inner.set_hand_contact(held);
    }

    /// Whether a hand currently holds the phone.
    pub fn hand_contact(&self) -> bool {
        self.inner.hand_contact()
    }

    /// Advances the thermal state by `dt` seconds.
    ///
    /// The hand, when present, is applied as an equivalent power term on
    /// the back-mid node, recomputed from the current temperatures: it
    /// conducts toward palm temperature and blocks part of the node's
    /// convective path. For the sub-second steps used by the device
    /// simulator this explicit coupling is indistinguishable from a true
    /// network edge.
    pub fn step(&mut self, dt: f64) {
        self.inner.step(dt);
    }

    /// Temperature at any modelled location.
    pub fn temperature(&self, node: PhoneNode) -> Celsius {
        self.inner.node_temperature(node.index())
    }

    /// The paper's **skin temperature**: middle of the back cover.
    pub fn skin_temperature(&self) -> Celsius {
        self.inner.skin_temperature()
    }

    /// The paper's **screen temperature**: middle of the screen.
    pub fn screen_temperature(&self) -> Celsius {
        self.inner.screen_temperature()
    }

    /// CPU die temperature (what the on-device CPU sensor reports).
    pub fn cpu_temperature(&self) -> Celsius {
        self.inner.die_temperature(0)
    }

    /// Battery temperature (what the on-device battery sensor reports).
    pub fn battery_temperature(&self) -> Celsius {
        self.inner.battery_temperature()
    }

    /// Ambient (room) temperature.
    pub fn ambient(&self) -> Celsius {
        self.inner.ambient()
    }

    /// Simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.inner.elapsed()
    }

    /// Resets every node to `t` and restarts the clock (fresh experiment).
    pub fn reset_to(&mut self, t: Celsius) {
        self.inner.reset_to(t);
    }

    /// Steady-state temperatures for the current heat input (ignores the
    /// hand). Indexed like [`PhoneNode::ALL`].
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError::SingularSystem`] (cannot happen with
    /// the default parameters, which link every region to ambient).
    pub fn steady_state(&self) -> Result<Vec<Celsius>, ThermalError> {
        self.inner.steady_state()
    }

    /// Parameters this model was built with.
    pub fn params(&self) -> &PhoneThermalParams {
        &self.params
    }

    /// Access to the underlying network (read-only diagnostics).
    pub fn network(&self) -> &ThermalNetwork {
        self.inner.network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone() -> PhoneThermalModel {
        PhoneThermalModel::new(PhoneThermalParams::default()).unwrap()
    }

    fn heavy() -> HeatInput {
        HeatInput {
            cpu_w: 3.4,
            gpu_w: 1.3,
            display_w: 1.0,
            battery_w: 0.35,
            board_w: 0.25,
        }
    }

    #[test]
    fn index_is_position_in_all() {
        // The const-consistency contract: `index` is defined as the
        // position in `ALL`, so the two must agree for every variant,
        // in both directions.
        for (i, node) in PhoneNode::ALL.iter().enumerate() {
            assert_eq!(node.index(), i, "{}", node.name());
            assert_eq!(PhoneNode::ALL[node.index()], *node);
        }
    }

    #[test]
    fn default_params_build() {
        let p = phone();
        assert_eq!(p.skin_temperature(), Celsius(28.0));
        assert!((p.ambient() - Celsius(24.0)).abs() < 1e-12);
    }

    #[test]
    fn heavy_load_reaches_hot_skin_in_minutes_not_hours() {
        let mut p = phone();
        p.set_heat(heavy());
        p.step(12.0 * 60.0);
        let skin = p.skin_temperature();
        assert!(
            skin > Celsius(38.0) && skin < Celsius(47.0),
            "12-minute heavy-load skin temperature {skin} outside plausible band"
        );
    }

    #[test]
    fn die_is_hottest_then_interior_then_surfaces() {
        let mut p = phone();
        p.set_heat(heavy());
        p.step(900.0);
        let die = p.cpu_temperature();
        let pkg = p.temperature(PhoneNode::Package);
        let skin = p.skin_temperature();
        assert!(die > pkg, "die {die} should exceed package {pkg}");
        assert!(pkg > skin, "package {pkg} should exceed skin {skin}");
        assert!(skin > p.ambient());
    }

    #[test]
    fn idle_phone_cools_toward_ambient() {
        let mut p = phone();
        p.set_heat(HeatInput::default());
        p.step(3600.0 * 4.0);
        assert!((p.skin_temperature() - p.ambient()).abs() < 0.05);
    }

    #[test]
    fn steady_state_matches_long_run() {
        let mut p = phone();
        p.set_heat(heavy());
        let ss = p.steady_state().unwrap();
        p.step(3600.0 * 6.0);
        for (node, expected) in PhoneNode::ALL.iter().zip(&ss) {
            let got = p.temperature(*node);
            assert!(
                (got - *expected).abs() < 0.05,
                "{}: long-run {got} vs steady-state {expected}",
                node.name()
            );
        }
    }

    #[test]
    fn rise_time_constant_is_minutes() {
        // The defining property of the skin-temperature problem: the skin
        // responds on a minutes scale, much slower than the die.
        let mut p = phone();
        p.set_heat(heavy());
        let ss = p.steady_state().unwrap()[PhoneNode::BackMid.index()];
        let start = p.skin_temperature();
        let target = start.value() + 0.63 * (ss - start);
        let mut t = 0.0;
        while p.skin_temperature().value() < target && t < 3600.0 {
            p.step(5.0);
            t += 5.0;
        }
        assert!(
            (120.0..1800.0).contains(&t),
            "skin 63% rise time {t} s should be minutes-scale"
        );
    }

    #[test]
    fn touch_changes_exterior_temperature_only_slightly() {
        // Reproduces the paper's §3.A observation: holding the phone
        // while it is actively used barely moves the skin temperature.
        let mut held = phone();
        let mut free = phone();
        held.set_hand_contact(true);
        for p in [&mut held, &mut free] {
            p.set_heat(heavy());
            p.step(600.0);
        }
        let delta = (held.skin_temperature() - free.skin_temperature()).abs();
        assert!(
            delta < 0.8,
            "touch shifted skin temperature by {delta} K — should be minor"
        );
    }

    #[test]
    fn hand_warms_a_cold_idle_phone() {
        // Off and not touched vs off and held: the hand warms the cover
        // toward palm temperature (the paper's turned-off experiments).
        let mut held = phone();
        held.reset_to(Celsius(24.0));
        held.set_hand_contact(true);
        held.step(1200.0);
        assert!(
            held.skin_temperature() > Celsius(24.3),
            "palm should warm an idle cover, got {}",
            held.skin_temperature()
        );
    }

    #[test]
    fn display_power_heats_screen_more_than_skin() {
        let mut p = phone();
        p.set_heat(HeatInput {
            display_w: 1.2,
            ..Default::default()
        });
        p.step(1200.0);
        assert!(p.screen_temperature() > p.skin_temperature());
    }

    #[test]
    fn battery_charging_heats_the_back() {
        let mut p = phone();
        p.set_heat(HeatInput {
            battery_w: 1.0,
            ..Default::default()
        });
        p.step(1800.0);
        assert!(p.skin_temperature() > p.screen_temperature());
    }

    #[test]
    fn total_heat_input_adds_up() {
        let h = heavy();
        assert!((h.total() - (3.4 + 1.3 + 1.0 + 0.35 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = phone();
        p.set_heat(heavy());
        p.step(600.0);
        p.reset_to(Celsius(26.0));
        assert_eq!(p.skin_temperature(), Celsius(26.0));
        assert_eq!(p.elapsed(), 0.0);
    }
}
