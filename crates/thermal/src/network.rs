//! The lumped RC thermal network: builder, state, and time stepping.
//!
//! A network is a set of *nodes* (thermal capacitances at a temperature),
//! *couplings* (thermal conductances between node pairs), *ambient links*
//! (conductances from a node to the ambient temperature), and per-node
//! *power injections*. Nodes are either **dynamic** (finite heat capacity,
//! temperature evolves) or **boundary** (fixed temperature — used for
//! things like a hand holding the phone, whose blood perfusion pins it
//! near 33 °C).

use crate::error::ThermalError;
use crate::integrator::{self, IntegrationMethod};
use crate::units::Celsius;

/// Opaque handle to a node of a [`ThermalNetwork`].
///
/// Ids are only meaningful for the network (or builder) that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of the node inside its network.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    /// Finite heat capacity in J/K; the temperature integrates over time.
    Dynamic { capacitance: f64 },
    /// Fixed temperature; acts as an infinite reservoir.
    Boundary,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeSpec {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) initial: Celsius,
}

/// Incrementally describes a thermal network, then [`build`]s it.
///
/// [`build`]: ThermalNetworkBuilder::build
///
/// ```
/// use usta_thermal::{Celsius, ThermalNetworkBuilder};
///
/// # fn main() -> Result<(), usta_thermal::ThermalError> {
/// let mut b = ThermalNetworkBuilder::new(Celsius(22.0));
/// let chip = b.add_node("chip", 1.5, Celsius(22.0))?;
/// let sink = b.add_node("sink", 40.0, Celsius(22.0))?;
/// b.couple(chip, sink, 2.0)?;
/// b.link_ambient(sink, 0.5)?;
/// let net = b.build()?;
/// assert_eq!(net.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalNetworkBuilder {
    nodes: Vec<NodeSpec>,
    couplings: Vec<(usize, usize, f64)>,
    ambient_links: Vec<(usize, f64)>,
    ambient: Celsius,
    method: IntegrationMethod,
}

impl ThermalNetworkBuilder {
    /// Starts a builder with the given ambient temperature.
    pub fn new(ambient: Celsius) -> ThermalNetworkBuilder {
        ThermalNetworkBuilder {
            nodes: Vec::new(),
            couplings: Vec::new(),
            ambient_links: Vec::new(),
            ambient,
            method: IntegrationMethod::Euler,
        }
    }

    /// Selects the integration method (forward Euler by default).
    pub fn integration_method(&mut self, method: IntegrationMethod) -> &mut Self {
        self.method = method;
        self
    }

    /// Adds a dynamic node with heat capacity `capacitance` (J/K) starting
    /// at `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidCapacitance`] if the capacitance is
    /// not a positive finite number, [`ThermalError::InvalidTemperature`]
    /// if `initial` is non-physical, or [`ThermalError::DuplicateNode`] if
    /// the name is already taken.
    pub fn add_node(
        &mut self,
        name: &str,
        capacitance: f64,
        initial: Celsius,
    ) -> Result<NodeId, ThermalError> {
        if !(capacitance.is_finite() && capacitance > 0.0) {
            return Err(ThermalError::InvalidCapacitance {
                name: name.to_owned(),
                value: capacitance,
            });
        }
        self.push_node(name, NodeKind::Dynamic { capacitance }, initial)
    }

    /// Adds a boundary node pinned at `temperature` (an infinite thermal
    /// reservoir, e.g. a hand or a cooling plate).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidTemperature`] for a non-physical
    /// temperature or [`ThermalError::DuplicateNode`] for a repeated name.
    pub fn add_boundary_node(
        &mut self,
        name: &str,
        temperature: Celsius,
    ) -> Result<NodeId, ThermalError> {
        self.push_node(name, NodeKind::Boundary, temperature)
    }

    fn push_node(
        &mut self,
        name: &str,
        kind: NodeKind,
        initial: Celsius,
    ) -> Result<NodeId, ThermalError> {
        if !initial.is_physical() {
            return Err(ThermalError::InvalidTemperature {
                name: name.to_owned(),
                value: initial.value(),
            });
        }
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(ThermalError::DuplicateNode {
                name: name.to_owned(),
            });
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec {
            name: name.to_owned(),
            kind,
            initial,
        });
        Ok(id)
    }

    /// Connects two nodes with a thermal conductance (W/K).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConductance`] for a non-positive or
    /// non-finite conductance, [`ThermalError::SelfCoupling`] when both
    /// ends are the same node, [`ThermalError::DuplicateCoupling`] when
    /// the unordered pair is already linked, and
    /// [`ThermalError::UnknownNode`] for foreign ids.
    pub fn couple(&mut self, a: NodeId, b: NodeId, conductance: f64) -> Result<(), ThermalError> {
        self.check_id(a)?;
        self.check_id(b)?;
        if a == b {
            return Err(ThermalError::SelfCoupling {
                name: self.nodes[a.0].name.clone(),
            });
        }
        if !(conductance.is_finite() && conductance > 0.0) {
            return Err(ThermalError::InvalidConductance {
                link: format!("{}—{}", self.nodes[a.0].name, self.nodes[b.0].name),
                value: conductance,
            });
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.couplings.iter().any(|&(x, y, _)| (x, y) == (lo, hi)) {
            return Err(ThermalError::DuplicateCoupling {
                link: format!("{}—{}", self.nodes[lo].name, self.nodes[hi].name),
            });
        }
        self.couplings.push((lo, hi, conductance));
        Ok(())
    }

    /// Connects a node to the ambient with a conductance (W/K).
    ///
    /// Multiple ambient links on the same node are summed.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConductance`] for a bad value or
    /// [`ThermalError::UnknownNode`] for a foreign id.
    pub fn link_ambient(&mut self, node: NodeId, conductance: f64) -> Result<(), ThermalError> {
        self.check_id(node)?;
        if !(conductance.is_finite() && conductance > 0.0) {
            return Err(ThermalError::InvalidConductance {
                link: format!("{}—ambient", self.nodes[node.0].name),
                value: conductance,
            });
        }
        self.ambient_links.push((node.0, conductance));
        Ok(())
    }

    fn check_id(&self, id: NodeId) -> Result<(), ThermalError> {
        if id.0 >= self.nodes.len() {
            return Err(ThermalError::UnknownNode { index: id.0 });
        }
        Ok(())
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyNetwork`] if no nodes were added and
    /// [`ThermalError::InvalidTemperature`] if the ambient temperature is
    /// non-physical.
    pub fn build(&self) -> Result<ThermalNetwork, ThermalError> {
        if self.nodes.is_empty() {
            return Err(ThermalError::EmptyNetwork);
        }
        if !self.ambient.is_physical() {
            return Err(ThermalError::InvalidTemperature {
                name: "ambient".to_owned(),
                value: self.ambient.value(),
            });
        }
        let n = self.nodes.len();
        let mut ambient_conductance = vec![0.0; n];
        for &(i, g) in &self.ambient_links {
            ambient_conductance[i] += g;
        }
        let capacitance: Vec<f64> = self
            .nodes
            .iter()
            .map(|spec| match spec.kind {
                NodeKind::Dynamic { capacitance } => capacitance,
                NodeKind::Boundary => f64::INFINITY,
            })
            .collect();
        let boundary: Vec<bool> = self
            .nodes
            .iter()
            .map(|spec| matches!(spec.kind, NodeKind::Boundary))
            .collect();
        // Per-node total conductance, used for the Euler stability limit.
        let mut total_g = ambient_conductance.clone();
        for &(a, b, g) in &self.couplings {
            total_g[a] += g;
            total_g[b] += g;
        }
        let stable_dt = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, spec)| match spec.kind {
                NodeKind::Dynamic { capacitance } if total_g[i] > 0.0 => {
                    Some(capacitance / total_g[i])
                }
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);

        Ok(ThermalNetwork {
            names: self.nodes.iter().map(|s| s.name.clone()).collect(),
            capacitance,
            boundary,
            couplings: self.couplings.clone(),
            ambient_conductance,
            ambient: self.ambient,
            temps: self.nodes.iter().map(|s| s.initial.value()).collect(),
            power: vec![0.0; n],
            method: self.method,
            // One tenth of the explicit-Euler stability bound keeps the
            // scheme stable, monotonic, and accurate to well under a
            // kelvin even for the fastest node of the network.
            max_step: 0.1 * stable_dt,
            elapsed: 0.0,
            scratch: vec![0.0; 5 * n],
        })
    }
}

/// A built thermal network: holds temperatures and integrates them.
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    names: Vec<String>,
    capacitance: Vec<f64>,
    boundary: Vec<bool>,
    couplings: Vec<(usize, usize, f64)>,
    ambient_conductance: Vec<f64>,
    ambient: Celsius,
    temps: Vec<f64>,
    power: Vec<f64>,
    method: IntegrationMethod,
    max_step: f64,
    elapsed: f64,
    scratch: Vec<f64>,
}

impl ThermalNetwork {
    /// Number of nodes (dynamic and boundary).
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// Current temperature of a node.
    pub fn temperature(&self, node: NodeId) -> Celsius {
        Celsius(self.temps[node.0])
    }

    /// All node temperatures, indexed by `NodeId::index`.
    pub fn temperatures(&self) -> Vec<Celsius> {
        self.temps.iter().copied().map(Celsius).collect()
    }

    /// Overrides the temperature of a dynamic node (e.g. to restart an
    /// experiment from a warm state).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidTemperature`] for non-physical
    /// values and [`ThermalError::BoundaryNode`] when targeting a fixed
    /// node.
    pub fn set_temperature(&mut self, node: NodeId, t: Celsius) -> Result<(), ThermalError> {
        if !t.is_physical() {
            return Err(ThermalError::InvalidTemperature {
                name: self.names[node.0].clone(),
                value: t.value(),
            });
        }
        if self.boundary[node.0] {
            return Err(ThermalError::BoundaryNode {
                name: self.names[node.0].clone(),
            });
        }
        self.temps[node.0] = t.value();
        Ok(())
    }

    /// Resets every dynamic node to the given temperature and clears the
    /// elapsed-time counter.
    pub fn reset_to(&mut self, t: Celsius) {
        for (i, temp) in self.temps.iter_mut().enumerate() {
            if !self.boundary[i] {
                *temp = t.value();
            }
        }
        self.elapsed = 0.0;
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Changes the ambient temperature (e.g. moving the phone outdoors).
    pub fn set_ambient(&mut self, t: Celsius) {
        self.ambient = t;
    }

    /// Sets the power injected into a node, in watts (replaces the
    /// previous value). Boundary nodes silently ignore power.
    pub fn set_power(&mut self, node: NodeId, watts: f64) {
        self.power[node.0] = watts;
    }

    /// Adds to the power injected into a node, in watts.
    pub fn add_power(&mut self, node: NodeId, watts: f64) {
        self.power[node.0] += watts;
    }

    /// Clears all power injections.
    pub fn clear_power(&mut self) {
        self.power.iter_mut().for_each(|p| *p = 0.0);
    }

    /// Power currently injected into a node, in watts.
    pub fn power(&self, node: NodeId) -> f64 {
        self.power[node.0]
    }

    /// Total power currently injected into dynamic nodes, in watts.
    pub fn total_power(&self) -> f64 {
        self.power
            .iter()
            .zip(&self.boundary)
            .filter(|&(_, &b)| !b)
            .map(|(p, _)| p)
            .sum()
    }

    /// Simulated time that has passed through [`step`](Self::step) /
    /// [`run`](Self::run), in seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Largest internally-used Euler sub-step (half the stability limit).
    pub fn max_stable_step(&self) -> f64 {
        self.max_step
    }

    /// Heat currently stored in the dynamic nodes relative to ambient, in
    /// joules. Useful for energy-balance checks.
    pub fn stored_energy(&self) -> f64 {
        let amb = self.ambient.value();
        self.temps
            .iter()
            .zip(&self.capacitance)
            .zip(&self.boundary)
            .filter(|&(_, &b)| !b)
            .map(|((t, c), _)| c * (t - amb))
            .sum()
    }

    /// Instantaneous heat flow out of the network, in watts: the sum over
    /// ambient links plus flow into boundary nodes.
    pub fn outflow(&self) -> f64 {
        let amb = self.ambient.value();
        let mut out = 0.0;
        for (i, &g) in self.ambient_conductance.iter().enumerate() {
            if !self.boundary[i] {
                out += g * (self.temps[i] - amb);
            }
        }
        for &(a, b, g) in &self.couplings {
            match (self.boundary[a], self.boundary[b]) {
                (false, true) => out += g * (self.temps[a] - self.temps[b]),
                (true, false) => out += g * (self.temps[b] - self.temps[a]),
                _ => {}
            }
        }
        out
    }

    /// Advances the network by `dt` seconds with the configured method,
    /// sub-stepping as needed for stability. `dt <= 0` is a no-op.
    pub fn step(&mut self, dt: f64) {
        if dt.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !dt.is_finite() {
            return;
        }
        match self.method {
            IntegrationMethod::Euler => integrator::euler_step(self, dt),
            IntegrationMethod::Rk4 => integrator::rk4_step(self, dt),
        }
        self.elapsed += dt;
    }

    /// Runs the network for `duration` seconds (convenience over
    /// [`step`](Self::step) — power inputs stay constant throughout).
    pub fn run(&mut self, duration: f64) {
        self.step(duration);
    }

    pub(crate) fn temps_mut(&mut self) -> &mut Vec<f64> {
        &mut self.temps
    }

    pub(crate) fn temps_slice(&self) -> &[f64] {
        &self.temps
    }

    pub(crate) fn max_step(&self) -> f64 {
        self.max_step
    }

    pub(crate) fn is_boundary(&self, i: usize) -> bool {
        self.boundary[i]
    }

    pub(crate) fn couplings(&self) -> &[(usize, usize, f64)] {
        &self.couplings
    }

    pub(crate) fn ambient_conductances(&self) -> &[f64] {
        &self.ambient_conductance
    }

    pub(crate) fn powers(&self) -> &[f64] {
        &self.power
    }

    pub(crate) fn capacitances(&self) -> &[f64] {
        &self.capacitance
    }

    pub(crate) fn method(&self) -> IntegrationMethod {
        self.method
    }

    /// Credits simulated time that was integrated externally (by the
    /// batched stepper), keeping [`elapsed`](Self::elapsed) consistent
    /// with the scalar path.
    pub(crate) fn advance_elapsed(&mut self, dt: f64) {
        self.elapsed += dt;
    }

    /// Splits the network into the pieces an integrator needs to hold
    /// simultaneously: mutable temperatures, the resident scratch
    /// buffer, the immutable derivative parameters, and the sub-step
    /// bound. Borrow-splitting here is what lets the integrators work
    /// in place instead of moving the scratch vector out and back every
    /// step.
    pub(crate) fn integration_state(&mut self) -> (&mut [f64], &mut [f64], NetParams<'_>, f64) {
        let ThermalNetwork {
            capacitance,
            boundary,
            couplings,
            ambient_conductance,
            ambient,
            temps,
            power,
            max_step,
            scratch,
            ..
        } = self;
        (
            temps.as_mut_slice(),
            scratch.as_mut_slice(),
            NetParams {
                boundary,
                capacitance,
                couplings,
                ambient_conductance,
                ambient: ambient.value(),
                power,
            },
            *max_step,
        )
    }
}

/// Immutable view of everything [`derivatives_into`] needs, borrowed
/// apart from the temperature and scratch state so integrators can
/// mutate those while the parameters stay shared.
pub(crate) struct NetParams<'a> {
    pub(crate) boundary: &'a [bool],
    pub(crate) capacitance: &'a [f64],
    pub(crate) couplings: &'a [(usize, usize, f64)],
    pub(crate) ambient_conductance: &'a [f64],
    pub(crate) ambient: f64,
    pub(crate) power: &'a [f64],
}

/// Writes dT/dt for `temps` into `out`. This is the scalar reference
/// kernel: the batched integrator in [`crate::batch`] replicates this
/// arithmetic — same pass order, same accumulation order, division (not
/// reciprocal multiplication) by the heat capacity — lane by lane.
pub(crate) fn derivatives_into(p: &NetParams<'_>, temps: &[f64], out: &mut [f64]) {
    let amb = p.ambient;
    for (i, o) in out.iter_mut().enumerate() {
        *o = if p.boundary[i] {
            0.0
        } else {
            p.ambient_conductance[i] * (amb - temps[i]) + p.power[i]
        };
    }
    for &(a, b, g) in p.couplings {
        let flow = g * (temps[a] - temps[b]); // a -> b
        if !p.boundary[b] {
            out[b] += flow;
        }
        if !p.boundary[a] {
            out[a] -= flow;
        }
    }
    for ((o, &b), &c) in out.iter_mut().zip(p.boundary).zip(p.capacitance) {
        if !b {
            *o /= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> (ThermalNetwork, NodeId, NodeId) {
        let mut b = ThermalNetworkBuilder::new(Celsius(25.0));
        let die = b.add_node("die", 2.0, Celsius(25.0)).unwrap();
        let case = b.add_node("case", 30.0, Celsius(25.0)).unwrap();
        b.couple(die, case, 1.5).unwrap();
        b.link_ambient(case, 0.3).unwrap();
        (b.build().unwrap(), die, case)
    }

    #[test]
    fn builder_validates_capacitance() {
        let mut b = ThermalNetworkBuilder::new(Celsius(25.0));
        assert!(matches!(
            b.add_node("x", 0.0, Celsius(25.0)),
            Err(ThermalError::InvalidCapacitance { .. })
        ));
        assert!(matches!(
            b.add_node("x", f64::NAN, Celsius(25.0)),
            Err(ThermalError::InvalidCapacitance { .. })
        ));
    }

    #[test]
    fn builder_rejects_duplicate_names_and_self_coupling() {
        let mut b = ThermalNetworkBuilder::new(Celsius(25.0));
        let a = b.add_node("a", 1.0, Celsius(25.0)).unwrap();
        assert!(matches!(
            b.add_node("a", 1.0, Celsius(25.0)),
            Err(ThermalError::DuplicateNode { .. })
        ));
        assert!(matches!(
            b.couple(a, a, 1.0),
            Err(ThermalError::SelfCoupling { .. })
        ));
    }

    #[test]
    fn builder_rejects_duplicate_coupling_either_order() {
        let mut b = ThermalNetworkBuilder::new(Celsius(25.0));
        let a = b.add_node("a", 1.0, Celsius(25.0)).unwrap();
        let c = b.add_node("c", 1.0, Celsius(25.0)).unwrap();
        b.couple(a, c, 1.0).unwrap();
        assert!(matches!(
            b.couple(c, a, 2.0),
            Err(ThermalError::DuplicateCoupling { .. })
        ));
    }

    #[test]
    fn builder_rejects_empty_network() {
        let b = ThermalNetworkBuilder::new(Celsius(25.0));
        assert!(matches!(b.build(), Err(ThermalError::EmptyNetwork)));
    }

    #[test]
    fn heated_die_warms_case_above_ambient() {
        let (mut net, die, case) = two_node_net();
        net.set_power(die, 2.0);
        net.run(600.0);
        assert!(net.temperature(die) > net.temperature(case));
        assert!(net.temperature(case) > Celsius(25.0));
    }

    #[test]
    fn no_power_relaxes_to_ambient() {
        let (mut net, die, case) = two_node_net();
        net.set_temperature(die, Celsius(60.0)).unwrap();
        net.set_temperature(case, Celsius(50.0)).unwrap();
        net.run(3600.0 * 5.0);
        assert!((net.temperature(die) - Celsius(25.0)).abs() < 0.01);
        assert!((net.temperature(case) - Celsius(25.0)).abs() < 0.01);
    }

    #[test]
    fn energy_balance_over_one_step() {
        let (mut net, die, _) = two_node_net();
        net.set_power(die, 3.0);
        let before = net.stored_energy();
        // One max-stable step: forward Euler conserves energy exactly per
        // sub-step (internal flows cancel in the capacitance-weighted sum).
        let dt = net.max_stable_step();
        let out_before = net.outflow();
        net.step(dt);
        let after = net.stored_energy();
        let expected = (3.0 - out_before) * dt;
        assert!(
            (after - before - expected).abs() < 1e-9,
            "energy drift: {} vs {}",
            after - before,
            expected
        );
    }

    #[test]
    fn boundary_node_stays_fixed_and_sinks_heat() {
        let mut b = ThermalNetworkBuilder::new(Celsius(25.0));
        let die = b.add_node("die", 2.0, Celsius(25.0)).unwrap();
        let hand = b.add_boundary_node("hand", Celsius(33.0)).unwrap();
        b.couple(die, hand, 1.0).unwrap();
        let mut net = b.build().unwrap();
        net.run(3600.0);
        // With no power, the die equilibrates to the hand temperature.
        assert!((net.temperature(die) - Celsius(33.0)).abs() < 0.01);
        assert_eq!(net.temperature(hand), Celsius(33.0));
        // Setting a boundary temperature is rejected.
        assert!(matches!(
            net.set_temperature(hand, Celsius(20.0)),
            Err(ThermalError::BoundaryNode { .. })
        ));
    }

    #[test]
    fn node_lookup_by_name() {
        let (net, die, case) = two_node_net();
        assert_eq!(net.node_by_name("die"), Some(die));
        assert_eq!(net.node_by_name("case"), Some(case));
        assert_eq!(net.node_by_name("nope"), None);
        assert_eq!(net.node_name(die), "die");
    }

    #[test]
    fn reset_restores_dynamic_nodes() {
        let (mut net, die, _) = two_node_net();
        net.set_power(die, 5.0);
        net.run(120.0);
        assert!(net.elapsed() > 0.0);
        net.reset_to(Celsius(25.0));
        assert_eq!(net.elapsed(), 0.0);
        assert_eq!(net.temperature(die), Celsius(25.0));
    }

    #[test]
    fn add_power_accumulates_and_clear_resets() {
        let (mut net, die, case) = two_node_net();
        net.set_power(die, 1.0);
        net.add_power(die, 0.5);
        assert_eq!(net.power(die), 1.5);
        net.add_power(case, 0.25);
        assert!((net.total_power() - 1.75).abs() < 1e-12);
        net.clear_power();
        assert_eq!(net.total_power(), 0.0);
    }

    #[test]
    fn ambient_change_shifts_equilibrium() {
        let (mut net, _, case) = two_node_net();
        net.set_ambient(Celsius(35.0));
        net.run(3600.0 * 5.0);
        assert!((net.temperature(case) - Celsius(35.0)).abs() < 0.01);
    }

    #[test]
    fn zero_or_negative_step_is_noop() {
        let (mut net, die, _) = two_node_net();
        net.set_power(die, 5.0);
        let t0 = net.temperature(die);
        net.step(0.0);
        net.step(-5.0);
        net.step(f64::NAN);
        assert_eq!(net.temperature(die), t0);
        assert_eq!(net.elapsed(), 0.0);
    }
}
