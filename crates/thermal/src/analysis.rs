//! Static analysis of thermal networks: steady state, effective thermal
//! resistance, and dominant time-constant estimation.

use crate::error::ThermalError;
use crate::network::{NodeId, ThermalNetwork};
use crate::units::Celsius;

/// Solves the steady-state temperatures of the network for its *current*
/// power inputs by Gaussian elimination of the conductance matrix.
///
/// Boundary nodes keep their fixed temperature; dynamic nodes solve
/// `Σ_j G_ij (T_j − T_i) + G_amb,i (T_amb − T_i) + P_i = 0`.
///
/// # Errors
///
/// Returns [`ThermalError::SingularSystem`] when some dynamic node has no
/// conductance path to the ambient or to any boundary node (its steady
/// state would be unbounded for non-zero power).
pub fn steady_state(net: &ThermalNetwork) -> Result<Vec<Celsius>, ThermalError> {
    let n = net.node_count();
    let amb = net.ambient().value();

    // Build A·T = b over all nodes; boundary rows are identity.
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n];
    for i in 0..n {
        if net.is_boundary(i) {
            a[i * n + i] = 1.0;
            b[i] = net.temps_slice()[i];
        } else {
            let g_amb = net.ambient_conductances()[i];
            a[i * n + i] += g_amb;
            b[i] = g_amb * amb + net.powers()[i];
        }
    }
    for &(x, y, g) in net.couplings() {
        if !net.is_boundary(x) {
            a[x * n + x] += g;
            a[x * n + y] -= g;
        }
        if !net.is_boundary(y) {
            a[y * n + y] += g;
            a[y * n + x] -= g;
        }
    }

    let t = solve_dense(&mut a, &mut b, n).ok_or(ThermalError::SingularSystem)?;
    Ok(t.into_iter().map(Celsius).collect())
}

/// Effective thermal resistance (K/W) from `node` to the ambient:
/// the steady-state temperature rise of `node` per watt injected into it,
/// with all other power inputs at zero.
///
/// # Errors
///
/// Propagates [`ThermalError::SingularSystem`] from the steady-state
/// solve.
pub fn thermal_resistance(net: &ThermalNetwork, node: NodeId) -> Result<f64, ThermalError> {
    let mut probe = net.clone();
    probe.clear_power();
    probe.set_power(node, 1.0);
    let t = steady_state(&probe)?;
    Ok(t[node.index()] - probe.ambient())
}

/// Estimates the dominant (slowest) time constant of the network in
/// seconds by power iteration on the linearized system, i.e. the inverse
/// of the smallest eigenvalue magnitude of `C⁻¹·G`.
///
/// This is the time scale on which skin temperature approaches steady
/// state — minutes for a phone, which is why the paper's user study needed
/// multi-minute holds.
///
/// # Errors
///
/// Propagates [`ThermalError::SingularSystem`] when the network has no
/// path to a fixed temperature.
pub fn dominant_time_constant(net: &ThermalNetwork) -> Result<f64, ThermalError> {
    // Relaxation estimate: start from a uniform +1 K perturbation on
    // dynamic nodes with zero power, then fit exp decay of the slowest
    // mode by long-time ratio sampling.
    let mut probe = net.clone();
    probe.clear_power();
    // Seed perturbation.
    let amb = probe.ambient();
    for i in 0..probe.node_count() {
        if !probe.is_boundary(i) {
            let id = crate::network::NodeId(i);
            probe.set_temperature(id, amb + 10.0)?;
        }
    }
    // March until the total excess decays below 1/e of its start; clamp
    // iterations to avoid infinite loops in near-singular cases.
    let start: f64 = probe.stored_energy();
    if start <= 0.0 {
        return Err(ThermalError::SingularSystem);
    }
    let target = start / std::f64::consts::E;
    let dt = probe.max_stable_step().max(1e-6);
    let mut t = 0.0;
    let max_t = 1e7;
    while probe.stored_energy() > target {
        probe.step(dt);
        t += dt;
        if t > max_t {
            return Err(ThermalError::SingularSystem);
        }
    }
    Ok(t)
}

/// Gaussian elimination with partial pivoting on a row-major dense
/// system. Returns `None` when the matrix is (numerically) singular.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(pivot * n + k, col * n + k);
            }
            b.swap(pivot, col);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * x[k];
        }
        x[row] = sum / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ThermalNetworkBuilder;

    fn chain() -> (ThermalNetwork, NodeId, NodeId) {
        let mut b = ThermalNetworkBuilder::new(Celsius(20.0));
        let hot = b.add_node("hot", 1.0, Celsius(20.0)).unwrap();
        let mid = b.add_node("mid", 5.0, Celsius(20.0)).unwrap();
        b.couple(hot, mid, 2.0).unwrap();
        b.link_ambient(mid, 0.5).unwrap();
        (b.build().unwrap(), hot, mid)
    }

    #[test]
    fn steady_state_matches_hand_calculation() {
        let (mut net, hot, mid) = chain();
        net.set_power(hot, 1.0);
        let t = steady_state(&net).unwrap();
        // Series resistances: mid = amb + 1/0.5 = 22; hot = mid + 1/2 = 22.5.
        assert!((t[mid.index()].value() - 22.0).abs() < 1e-9);
        assert!((t[hot.index()].value() - 22.5).abs() < 1e-9);
    }

    #[test]
    fn steady_state_agrees_with_long_simulation() {
        let (mut net, hot, _) = chain();
        net.set_power(hot, 1.5);
        let predicted = steady_state(&net).unwrap();
        net.run(3600.0);
        for (i, p) in predicted.iter().enumerate() {
            let simulated = net.temps_slice()[i];
            assert!(
                (simulated - p.value()).abs() < 1e-3,
                "node {i}: simulated {simulated} vs predicted {p}"
            );
        }
    }

    #[test]
    fn isolated_node_is_singular() {
        let mut b = ThermalNetworkBuilder::new(Celsius(20.0));
        let _iso = b.add_node("iso", 1.0, Celsius(20.0)).unwrap();
        let net = b.build().unwrap();
        assert!(matches!(
            steady_state(&net),
            Err(ThermalError::SingularSystem)
        ));
    }

    #[test]
    fn thermal_resistance_is_series_sum() {
        let (net, hot, mid) = chain();
        let r_hot = thermal_resistance(&net, hot).unwrap();
        let r_mid = thermal_resistance(&net, mid).unwrap();
        assert!((r_hot - 2.5).abs() < 1e-9);
        assert!((r_mid - 2.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_node_pins_steady_state() {
        let mut b = ThermalNetworkBuilder::new(Celsius(20.0));
        let die = b.add_node("die", 1.0, Celsius(20.0)).unwrap();
        let hand = b.add_boundary_node("hand", Celsius(33.0)).unwrap();
        b.couple(die, hand, 1.0).unwrap();
        let net = b.build().unwrap();
        let t = steady_state(&net).unwrap();
        assert!((t[die.index()].value() - 33.0).abs() < 1e-9);
        assert!((t[hand.index()].value() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn time_constant_of_single_rc_is_c_over_g() {
        let mut b = ThermalNetworkBuilder::new(Celsius(20.0));
        let n = b.add_node("n", 10.0, Celsius(20.0)).unwrap();
        b.link_ambient(n, 0.5).unwrap();
        let net = b.build().unwrap();
        let tau = dominant_time_constant(&net).unwrap();
        assert!(
            (tau - 20.0).abs() < 1.0,
            "tau {tau} should be close to C/G = 20 s"
        );
    }
}
