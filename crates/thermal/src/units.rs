//! Temperature units.
//!
//! The whole workspace reports temperatures in degrees Celsius. A newtype
//! keeps Celsius values from being confused with the many other `f64`
//! quantities flying around (watts, seconds, utilization ratios) while
//! staying cheap to copy and easy to do arithmetic with.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A temperature in degrees Celsius.
///
/// Differences between two `Celsius` values are plain `f64` kelvins
/// (1 K == 1 °C of difference), which is what control-policy code wants:
///
/// ```
/// use usta_thermal::Celsius;
///
/// let limit = Celsius(37.0);
/// let predicted = Celsius(35.2);
/// let margin = limit - predicted; // f64 kelvins
/// assert!((margin - 1.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

impl Celsius {
    /// Absolute zero, the lowest physically meaningful temperature.
    pub const ABSOLUTE_ZERO: Celsius = Celsius(-273.15);

    /// Returns the raw value in degrees Celsius.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to kelvin.
    ///
    /// ```
    /// # use usta_thermal::Celsius;
    /// assert_eq!(Celsius(0.0).to_kelvin(), 273.15);
    /// ```
    #[inline]
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Builds a temperature from kelvin.
    #[inline]
    pub fn from_kelvin(k: f64) -> Celsius {
        Celsius(k - 273.15)
    }

    /// Returns `true` if the value is finite and not below absolute zero.
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= Self::ABSOLUTE_ZERO.0
    }

    /// Returns the larger of two temperatures.
    #[inline]
    pub fn max(self, other: Celsius) -> Celsius {
        Celsius(self.0.max(other.0))
    }

    /// Returns the smaller of two temperatures.
    #[inline]
    pub fn min(self, other: Celsius) -> Celsius {
        Celsius(self.0.min(other.0))
    }

    /// Linear interpolation between `self` and `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; `t` outside `[0, 1]`
    /// extrapolates.
    #[inline]
    pub fn lerp(self, other: Celsius, t: f64) -> Celsius {
        Celsius(self.0 + (other.0 - self.0) * t)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}°C", precision, self.0)
        } else {
            write!(f, "{}°C", self.0)
        }
    }
}

impl From<f64> for Celsius {
    fn from(v: f64) -> Celsius {
        Celsius(v)
    }
}

impl From<Celsius> for f64 {
    fn from(c: Celsius) -> f64 {
        c.0
    }
}

/// `Celsius − Celsius` is a temperature *difference* in kelvins.
impl Sub for Celsius {
    type Output = f64;

    fn sub(self, rhs: Celsius) -> f64 {
        self.0 - rhs.0
    }
}

/// `Celsius + f64` shifts a temperature by a difference in kelvins.
impl Add<f64> for Celsius {
    type Output = Celsius;

    fn add(self, rhs: f64) -> Celsius {
        Celsius(self.0 + rhs)
    }
}

/// `Celsius − f64` shifts a temperature down by a difference in kelvins.
impl Sub<f64> for Celsius {
    type Output = Celsius;

    fn sub(self, rhs: f64) -> Celsius {
        Celsius(self.0 - rhs)
    }
}

impl AddAssign<f64> for Celsius {
    fn add_assign(&mut self, rhs: f64) {
        self.0 += rhs;
    }
}

impl SubAssign<f64> for Celsius {
    fn sub_assign(&mut self, rhs: f64) {
        self.0 -= rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_is_kelvins() {
        assert_eq!(Celsius(40.0) - Celsius(36.5), 3.5);
    }

    #[test]
    fn shift_by_delta() {
        assert_eq!(Celsius(40.0) + 2.0, Celsius(42.0));
        assert_eq!(Celsius(40.0) - 2.0, Celsius(38.0));
        let mut t = Celsius(30.0);
        t += 1.5;
        t -= 0.5;
        assert_eq!(t, Celsius(31.0));
    }

    #[test]
    fn kelvin_round_trip() {
        let t = Celsius(36.6);
        assert!((Celsius::from_kelvin(t.to_kelvin()) - t).abs() < 1e-12);
    }

    #[test]
    fn physicality() {
        assert!(Celsius(25.0).is_physical());
        assert!(Celsius::ABSOLUTE_ZERO.is_physical());
        assert!(!Celsius(-300.0).is_physical());
        assert!(!Celsius(f64::NAN).is_physical());
        assert!(!Celsius(f64::INFINITY).is_physical());
    }

    #[test]
    fn ordering_and_min_max() {
        assert!(Celsius(36.0) < Celsius(37.0));
        assert_eq!(Celsius(36.0).max(Celsius(37.0)), Celsius(37.0));
        assert_eq!(Celsius(36.0).min(Celsius(37.0)), Celsius(36.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Celsius(20.0);
        let b = Celsius(40.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Celsius(30.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Celsius(37.0)), "37°C");
        assert_eq!(format!("{:.1}", Celsius(36.649)), "36.6°C");
    }

    #[test]
    fn conversions() {
        let t: Celsius = 25.0.into();
        let v: f64 = t.into();
        assert_eq!(v, 25.0);
    }
}
