//! # usta-thermal — compact thermal RC-network simulator
//!
//! This crate is the thermal substrate for the USTA reproduction
//! (Egilmez et al., *User-Specific Skin Temperature-Aware DVFS for
//! Smartphones*, DATE 2015). It models a device as a lumped
//! resistance–capacitance (RC) network: each physical component (CPU die,
//! package, board, battery, back cover, screen) is a thermal node with a
//! heat capacity, nodes exchange heat through thermal conductances, and
//! selected nodes leak heat to the ambient.
//!
//! The network integrates the standard compact-model ODE
//!
//! ```text
//! C_i · dT_i/dt = Σ_j G_ij (T_j − T_i) + G_amb,i (T_amb − T_i) + P_i
//! ```
//!
//! with either sub-stepped forward Euler (default, kept inside the
//! stability limit automatically) or classic RK4.
//!
//! ## Quick start
//!
//! ```
//! use usta_thermal::{Celsius, ThermalNetworkBuilder};
//!
//! # fn main() -> Result<(), usta_thermal::ThermalError> {
//! let mut builder = ThermalNetworkBuilder::new(Celsius(25.0));
//! let die = builder.add_node("die", 2.0, Celsius(25.0))?;
//! let case = builder.add_node("case", 30.0, Celsius(25.0))?;
//! builder.couple(die, case, 1.5)?;
//! builder.link_ambient(case, 0.3)?;
//! let mut net = builder.build()?;
//!
//! net.set_power(die, 2.0); // 2 W into the die
//! net.run(60.0);           // simulate one minute
//! assert!(net.temperature(die) > net.temperature(case));
//! assert!(net.temperature(case) > Celsius(25.0));
//! # Ok(())
//! # }
//! ```
//!
//! The [`phone`] module provides a calibrated smartphone network
//! ([`PhoneThermalModel`]) whose back-cover ("skin") and screen nodes play
//! the role of the paper's external thermistors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod batch;
pub mod error;
pub mod integrator;
pub mod materials;
pub mod network;
pub mod phone;
pub mod topology;
pub mod units;

pub use batch::ThermalBatch;
pub use error::ThermalError;
pub use integrator::IntegrationMethod;
pub use network::{NodeId, ThermalNetwork, ThermalNetworkBuilder};
pub use phone::{HandContact, HeatInput, PhoneNode, PhoneThermalModel, PhoneThermalParams};
pub use topology::{DeviceThermalModel, HeatLoad, NodeRoles, ThermalNode, ThermalTopology};
pub use units::Celsius;
