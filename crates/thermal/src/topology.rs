//! Data-driven device thermal topology.
//!
//! [`PhoneThermalModel`](crate::PhoneThermalModel) hardwires the seven
//! nodes of the paper's Nexus 4; this module promotes that wiring to
//! data. A [`ThermalTopology`] declares the nodes (named capacitances),
//! the conductance edges between them and to ambient, and — crucially —
//! the **roles** the device simulator needs to route heat and read
//! sensors: one die node *per CPU cluster* (so a big.LITTLE part's big
//! and LITTLE clusters heat separate RC nodes), the package/board/
//! battery/screen injection points, the skin node (what the user's palm
//! touches, and where the hand model attaches), and the exterior
//! back-cover nodes that cases re-parameterise.
//!
//! [`DeviceThermalModel`] is the runtime: it builds a
//! [`ThermalNetwork`] from the topology and steps it under a
//! [`HeatLoad`] whose CPU term is a per-die vector. A single-die
//! topology driven through the [`crate::PhoneThermalModel`]-shaped API
//! is bit-identical to the historical model — the golden-bit tests in
//! `usta-sim` pin that contract.

use crate::error::ThermalError;
use crate::network::{NodeId, ThermalNetwork, ThermalNetworkBuilder};
use crate::phone::HandContact;
use crate::units::Celsius;

/// One node of a topology: a named heat capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNode {
    /// Stable node name (becomes the network node name, trace columns,
    /// and fleet report rows).
    pub name: String,
    /// Heat capacity, J/K.
    pub capacitance: f64,
}

/// Functional designations of a topology's nodes, by node index.
///
/// Roles are what decouple the simulator from any fixed node set: heat
/// routing, sensor reads, and scenario re-parameterisation all go
/// through here instead of through a hardcoded enum.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRoles {
    /// One CPU die node per frequency domain, in the device's big-first
    /// cluster order. Cluster `d`'s CPU power lands on `dies[d]`.
    pub dies: Vec<usize>,
    /// SoC package node — GPU heat lands here unless a dedicated GPU
    /// node is designated.
    pub package: usize,
    /// Dedicated GPU die node, when the topology declares one — GPU
    /// heat is routed here instead of onto the package.
    pub gpu: Option<usize>,
    /// Main-board node — radios, camera ISP, PMIC heat.
    pub board: usize,
    /// Battery pack node — charge/discharge losses.
    pub battery: usize,
    /// Screen node — display panel heat, and the paper's **screen
    /// temperature** reading.
    pub screen: usize,
    /// The paper's **skin temperature** node: what the user touches and
    /// where [`HandContact`] attaches.
    pub skin: usize,
    /// Exterior back-cover nodes (skin-side), in declaration order —
    /// the nodes scenario layers (cases) add mass to and whose ambient
    /// links they scale.
    pub back: Vec<usize>,
}

impl NodeRoles {
    /// Every role index, for bounds checking.
    fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.dies
            .iter()
            .copied()
            .chain([
                self.package,
                self.board,
                self.battery,
                self.screen,
                self.skin,
            ])
            .chain(self.gpu)
            .chain(self.back.iter().copied())
    }
}

/// A device's thermal network as plain data: nodes, edges, ambient
/// couplings, the hand model, and the node roles.
///
/// Deep validation (connectivity, designation consistency with the
/// cluster list) lives in `usta-device`, where topologies are declared;
/// [`DeviceThermalModel::new`] re-checks the physical basics (positive
/// C/G, in-range indices) through the network builder.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalTopology {
    /// The nodes, in network order.
    pub nodes: Vec<ThermalNode>,
    /// Internal couplings `(a, b, conductance)` by node index, W/K.
    pub couplings: Vec<(usize, usize, f64)>,
    /// Ambient links `(node, conductance)` by node index, W/K.
    pub ambient_links: Vec<(usize, f64)>,
    /// Ambient (room) temperature.
    pub ambient: Celsius,
    /// Initial temperature of every node.
    pub initial: Celsius,
    /// Hand model used when contact is enabled.
    pub hand: HandContact,
    /// The node roles (heat routing and sensor designations).
    pub roles: NodeRoles,
}

impl ThermalTopology {
    /// Number of CPU die nodes (= frequency domains served).
    pub fn dies(&self) -> usize {
        self.roles.dies.len()
    }

    /// Name of the given node.
    pub fn node_name(&self, index: usize) -> &str {
        &self.nodes[index].name
    }

    /// Node index by name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Names of the die nodes, in big-first cluster order.
    pub fn die_node_names(&self) -> Vec<String> {
        self.roles
            .dies
            .iter()
            .map(|&i| self.nodes[i].name.clone())
            .collect()
    }

    /// Total heat capacity, J/K.
    pub fn total_capacitance(&self) -> f64 {
        self.nodes.iter().map(|n| n.capacitance).sum()
    }

    /// Sum of all ambient conductances, W/K.
    pub fn total_ambient_conductance(&self) -> f64 {
        self.ambient_links.iter().map(|&(_, g)| g).sum()
    }

    /// Sum of the ambient conductances attached to the skin node, W/K —
    /// the surface the hand model partially blocks.
    fn skin_ambient_conductance(&self) -> f64 {
        self.ambient_links
            .iter()
            .filter(|&&(n, _)| n == self.roles.skin)
            .map(|&(_, g)| g)
            .sum()
    }

    /// Checks index ranges: every coupling, ambient link, and role must
    /// reference a declared node, and at least one die node must exist.
    fn check_indices(&self) -> Result<(), ThermalError> {
        let n = self.nodes.len();
        if self.roles.dies.is_empty() {
            return Err(ThermalError::NoDieNode);
        }
        let coupling_ends = self.couplings.iter().flat_map(|&(a, b, _)| [a, b]);
        let link_ends = self.ambient_links.iter().map(|&(i, _)| i);
        for index in coupling_ends.chain(link_ends).chain(self.roles.indices()) {
            if index >= n {
                return Err(ThermalError::UnknownNode { index });
            }
        }
        Ok(())
    }
}

/// Heat entering the device for the current step, in watts, keyed by
/// node role — the CPU term is one entry **per die node** so each
/// cluster heats its own region of the die.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeatLoad {
    /// Per-cluster CPU power (dynamic + leakage), big-first — routed to
    /// [`NodeRoles::dies`] index for index.
    pub die_w: Vec<f64>,
    /// GPU → package node.
    pub gpu_w: f64,
    /// Display panel and backlight → screen node.
    pub display_w: f64,
    /// Battery internal losses → battery node.
    pub battery_w: f64,
    /// Everything else on the main board → board node.
    pub board_w: f64,
}

impl HeatLoad {
    /// A single-die load (the historical [`HeatInput`](crate::HeatInput)
    /// shape).
    pub fn single(
        cpu_w: f64,
        gpu_w: f64,
        display_w: f64,
        battery_w: f64,
        board_w: f64,
    ) -> HeatLoad {
        HeatLoad {
            die_w: vec![cpu_w],
            gpu_w,
            display_w,
            battery_w,
            board_w,
        }
    }

    /// Total heat entering the device, in watts.
    pub fn total(&self) -> f64 {
        self.die_w.iter().sum::<f64>() + self.gpu_w + self.display_w + self.battery_w + self.board_w
    }
}

/// A device as a thermal object: a [`ThermalNetwork`] built from a
/// [`ThermalTopology`], stepped under a [`HeatLoad`].
///
/// ```
/// use usta_thermal::{DeviceThermalModel, HeatLoad, PhoneThermalParams};
///
/// # fn main() -> Result<(), usta_thermal::ThermalError> {
/// let mut model = DeviceThermalModel::new(PhoneThermalParams::default().topology())?;
/// model.set_heat(HeatLoad::single(3.0, 1.0, 1.0, 0.0, 0.0));
/// model.step(300.0); // five hot minutes
/// assert!(model.skin_temperature() > model.ambient());
/// assert!(model.hottest_die_temperature() > model.skin_temperature());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeviceThermalModel {
    net: ThermalNetwork,
    ids: Vec<NodeId>,
    topology: ThermalTopology,
    heat: HeatLoad,
    hand_on: bool,
}

impl DeviceThermalModel {
    /// Builds the network from the topology.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoDieNode`] for a topology without die
    /// nodes, [`ThermalError::UnknownNode`] for out-of-range indices,
    /// and propagates builder errors (invalid capacitances,
    /// conductances, temperatures, duplicate names or couplings).
    pub fn new(topology: ThermalTopology) -> Result<DeviceThermalModel, ThermalError> {
        topology.check_indices()?;
        let mut b = ThermalNetworkBuilder::new(topology.ambient);
        let mut ids = Vec::with_capacity(topology.nodes.len());
        for node in &topology.nodes {
            ids.push(b.add_node(&node.name, node.capacitance, topology.initial)?);
        }
        for &(a, c, g) in &topology.couplings {
            b.couple(ids[a], ids[c], g)?;
        }
        for &(n, g) in &topology.ambient_links {
            b.link_ambient(ids[n], g)?;
        }
        let heat = HeatLoad {
            die_w: vec![0.0; topology.roles.dies.len()],
            ..HeatLoad::default()
        };
        Ok(DeviceThermalModel {
            net: b.build()?,
            ids,
            topology,
            heat,
            hand_on: false,
        })
    }

    /// Sets the heat entering the device; stays in effect until changed.
    ///
    /// # Panics
    ///
    /// Panics if `heat.die_w` does not carry exactly one entry per die
    /// node of the topology.
    pub fn set_heat(&mut self, heat: HeatLoad) {
        assert_eq!(
            heat.die_w.len(),
            self.topology.roles.dies.len(),
            "one CPU power entry per die node"
        );
        self.heat = heat;
    }

    /// Heat load currently applied.
    pub fn heat(&self) -> &HeatLoad {
        &self.heat
    }

    /// Mutable access to the heat load, for in-place updates on the
    /// hot path (reusing the `die_w` allocation instead of rebuilding
    /// a [`HeatLoad`] every step). Callers must keep `die_w` at one
    /// entry per die node; [`prepare_step`](Self::prepare_step)
    /// debug-asserts it.
    pub fn heat_mut(&mut self) -> &mut HeatLoad {
        &mut self.heat
    }

    /// Enables or disables palm contact on the skin node.
    pub fn set_hand_contact(&mut self, held: bool) {
        self.hand_on = held;
    }

    /// Whether a hand currently holds the device.
    pub fn hand_contact(&self) -> bool {
        self.hand_on
    }

    /// Routes the current heat load to its role nodes as power
    /// injections (skin/hand power excluded).
    fn apply_powers(net: &mut ThermalNetwork, ids: &[NodeId], roles: &NodeRoles, heat: &HeatLoad) {
        net.clear_power();
        for (&node, &watts) in roles.dies.iter().zip(&heat.die_w) {
            net.add_power(ids[node], watts);
        }
        net.add_power(ids[roles.gpu.unwrap_or(roles.package)], heat.gpu_w);
        net.add_power(ids[roles.board], heat.board_w);
        net.add_power(ids[roles.battery], heat.battery_w);
        net.add_power(ids[roles.screen], heat.display_w);
    }

    /// Advances the thermal state by `dt` seconds.
    ///
    /// The hand, when present, is applied as an equivalent power term on
    /// the skin node, recomputed from the current temperatures: it
    /// conducts toward palm temperature and blocks part of the node's
    /// convective path (see [`HandContact`]).
    ///
    /// Equivalent to [`prepare_step`](Self::prepare_step) followed by
    /// [`integrate`](Self::integrate); batched drivers call the two
    /// halves separately so several prepared models can integrate
    /// together through [`ThermalBatch`](crate::ThermalBatch).
    pub fn step(&mut self, dt: f64) {
        self.prepare_step();
        self.integrate(dt);
    }

    /// Stages a step without advancing time: routes the heat load to
    /// its role nodes and adds the hand's equivalent power term on the
    /// skin node, computed from the *current* temperatures.
    pub fn prepare_step(&mut self) {
        debug_assert_eq!(
            self.heat.die_w.len(),
            self.topology.roles.dies.len(),
            "one CPU power entry per die node"
        );
        Self::apply_powers(&mut self.net, &self.ids, &self.topology.roles, &self.heat);
        let skin = self.ids[self.topology.roles.skin];
        let mut skin_power = 0.0;
        if self.hand_on {
            let hand = self.topology.hand;
            let t_skin = self.net.temperature(skin);
            // Conduction toward the palm…
            skin_power += hand.contact_conductance * (hand.palm_temperature - t_skin);
            // …while the palm blocks part of the convective surface.
            let g_amb_skin = self.topology.skin_ambient_conductance();
            skin_power += hand.blocked_fraction * g_amb_skin * (t_skin - self.net.ambient());
        }
        self.net.add_power(skin, skin_power);
    }

    /// Advances a [`prepare_step`](Self::prepare_step)-staged model by
    /// `dt` seconds.
    pub fn integrate(&mut self, dt: f64) {
        self.net.step(dt);
    }

    /// Temperature of an arbitrary node, by topology index.
    pub fn node_temperature(&self, index: usize) -> Celsius {
        self.net.temperature(self.ids[index])
    }

    /// Temperature of a node by name, when it exists.
    pub fn node_temperature_by_name(&self, name: &str) -> Option<Celsius> {
        self.topology
            .node_index(name)
            .map(|i| self.node_temperature(i))
    }

    /// All node temperatures, in topology node order.
    pub fn temperatures(&self) -> Vec<Celsius> {
        self.ids
            .iter()
            .map(|&id| self.net.temperature(id))
            .collect()
    }

    /// The paper's **skin temperature**: the topology's skin node.
    pub fn skin_temperature(&self) -> Celsius {
        self.node_temperature(self.topology.roles.skin)
    }

    /// The paper's **screen temperature**: the topology's screen node.
    pub fn screen_temperature(&self) -> Celsius {
        self.node_temperature(self.topology.roles.screen)
    }

    /// Die temperature of frequency domain `d` (that cluster's die
    /// node).
    pub fn die_temperature(&self, d: usize) -> Celsius {
        self.node_temperature(self.topology.roles.dies[d])
    }

    /// The hottest die node's temperature — what a kernel CPU thermal
    /// zone reports on a multi-cluster part. Ties resolve to the
    /// earlier (bigger) cluster, deterministically.
    pub fn hottest_die_temperature(&self) -> Celsius {
        let mut best = self.die_temperature(0);
        for d in 1..self.topology.roles.dies.len() {
            let t = self.die_temperature(d);
            if t > best {
                best = t;
            }
        }
        best
    }

    /// Battery temperature (what the on-device battery sensor reports).
    pub fn battery_temperature(&self) -> Celsius {
        self.node_temperature(self.topology.roles.battery)
    }

    /// Ambient (room) temperature.
    pub fn ambient(&self) -> Celsius {
        self.net.ambient()
    }

    /// Simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.net.elapsed()
    }

    /// Resets every node to `t` and restarts the clock (fresh
    /// experiment).
    pub fn reset_to(&mut self, t: Celsius) {
        self.net.reset_to(t);
    }

    /// Steady-state temperatures for the current heat load (ignores the
    /// hand), in topology node order.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError::SingularSystem`] for topologies with
    /// no path to ambient.
    pub fn steady_state(&self) -> Result<Vec<Celsius>, ThermalError> {
        let mut probe = self.net.clone();
        Self::apply_powers(&mut probe, &self.ids, &self.topology.roles, &self.heat);
        crate::analysis::steady_state(&probe)
    }

    /// The topology this model was built from.
    pub fn topology(&self) -> &ThermalTopology {
        &self.topology
    }

    /// Access to the underlying network (read-only diagnostics).
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    pub(crate) fn network_mut(&mut self) -> &mut ThermalNetwork {
        &mut self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::{HeatInput, PhoneNode, PhoneThermalModel, PhoneThermalParams};

    fn two_die_topology() -> ThermalTopology {
        // A minimal big.LITTLE slab: two dies on one package, one
        // exterior cover that is both skin and the only back node.
        ThermalTopology {
            nodes: vec![
                ThermalNode {
                    name: "die_big".to_owned(),
                    capacitance: 1.2,
                },
                ThermalNode {
                    name: "die_little".to_owned(),
                    capacitance: 0.5,
                },
                ThermalNode {
                    name: "package".to_owned(),
                    capacitance: 8.0,
                },
                ThermalNode {
                    name: "cover".to_owned(),
                    capacitance: 20.0,
                },
                ThermalNode {
                    name: "screen".to_owned(),
                    capacitance: 18.0,
                },
            ],
            couplings: vec![(0, 2, 2.5), (1, 2, 1.5), (2, 3, 0.5), (2, 4, 0.4)],
            ambient_links: vec![(3, 0.1), (4, 0.12)],
            ambient: Celsius(24.0),
            initial: Celsius(26.0),
            hand: HandContact::default(),
            roles: NodeRoles {
                dies: vec![0, 1],
                package: 2,
                gpu: None,
                board: 2,
                battery: 3,
                screen: 4,
                skin: 3,
                back: vec![3],
            },
        }
    }

    #[test]
    fn phone_params_topology_matches_the_hardwired_wiring() {
        let params = PhoneThermalParams::default();
        let t = params.topology();
        assert_eq!(t.nodes.len(), 7);
        for node in PhoneNode::ALL {
            assert_eq!(t.node_name(node.index()), node.name());
            assert_eq!(
                t.nodes[node.index()].capacitance,
                params.capacitance[node.index()]
            );
        }
        assert_eq!(t.couplings.len(), params.couplings.len());
        assert_eq!(t.roles.dies, vec![PhoneNode::Cpu.index()]);
        assert_eq!(t.roles.skin, PhoneNode::BackMid.index());
        assert_eq!(t.roles.screen, PhoneNode::Screen.index());
        assert_eq!(
            t.roles.back,
            vec![PhoneNode::BackMid.index(), PhoneNode::BackUpper.index()]
        );
        assert_eq!(t.total_capacitance(), params.total_capacitance());
        assert_eq!(
            t.total_ambient_conductance(),
            params.total_ambient_conductance()
        );
        assert_eq!(t.die_node_names(), vec!["cpu"]);
    }

    #[test]
    fn single_die_model_is_bit_identical_to_the_phone_model() {
        let params = PhoneThermalParams::default();
        let mut legacy = PhoneThermalModel::new(params.clone()).unwrap();
        let mut general = DeviceThermalModel::new(params.topology()).unwrap();
        let heat = HeatInput {
            cpu_w: 3.1,
            gpu_w: 1.2,
            display_w: 0.9,
            battery_w: 0.3,
            board_w: 0.2,
        };
        legacy.set_heat(heat);
        general.set_heat(HeatLoad::single(3.1, 1.2, 0.9, 0.3, 0.2));
        legacy.set_hand_contact(true);
        general.set_hand_contact(true);
        for _ in 0..600 {
            legacy.step(1.0);
            general.step(1.0);
        }
        for node in PhoneNode::ALL {
            assert_eq!(
                legacy.temperature(node).value().to_bits(),
                general.node_temperature(node.index()).value().to_bits(),
                "{}",
                node.name()
            );
        }
    }

    #[test]
    fn each_cluster_heats_its_own_die() {
        let mut big_loaded = DeviceThermalModel::new(two_die_topology()).unwrap();
        let mut little_loaded = DeviceThermalModel::new(two_die_topology()).unwrap();
        big_loaded.set_heat(HeatLoad {
            die_w: vec![2.0, 0.0],
            ..HeatLoad::default()
        });
        little_loaded.set_heat(HeatLoad {
            die_w: vec![0.0, 2.0],
            ..HeatLoad::default()
        });
        big_loaded.step(600.0);
        little_loaded.step(600.0);
        assert!(big_loaded.die_temperature(0) > big_loaded.die_temperature(1));
        assert!(little_loaded.die_temperature(1) > little_loaded.die_temperature(0));
        assert_eq!(
            big_loaded.hottest_die_temperature(),
            big_loaded.die_temperature(0)
        );
        assert_eq!(
            little_loaded.hottest_die_temperature(),
            little_loaded.die_temperature(1)
        );
    }

    #[test]
    fn node_lookup_by_name_and_temperature_listing() {
        let model = DeviceThermalModel::new(two_die_topology()).unwrap();
        assert_eq!(model.topology().node_index("die_little"), Some(1));
        assert_eq!(
            model.node_temperature_by_name("die_big"),
            Some(model.die_temperature(0))
        );
        assert_eq!(model.node_temperature_by_name("nope"), None);
        assert_eq!(model.temperatures().len(), 5);
        assert_eq!(
            model.topology().die_node_names(),
            vec!["die_big", "die_little"]
        );
    }

    #[test]
    fn steady_state_matches_long_run() {
        let mut model = DeviceThermalModel::new(two_die_topology()).unwrap();
        model.set_heat(HeatLoad {
            die_w: vec![1.5, 0.5],
            gpu_w: 0.8,
            display_w: 0.6,
            battery_w: 0.1,
            board_w: 0.1,
        });
        let ss = model.steady_state().unwrap();
        model.step(3600.0 * 8.0);
        for (i, expected) in ss.iter().enumerate() {
            let got = model.node_temperature(i);
            assert!(
                (got - *expected).abs() < 0.05,
                "{}: long-run {got} vs steady-state {expected}",
                model.topology().node_name(i)
            );
        }
    }

    #[test]
    fn bad_topologies_are_rejected() {
        let mut t = two_die_topology();
        t.roles.dies.clear();
        assert_eq!(
            DeviceThermalModel::new(t).unwrap_err(),
            ThermalError::NoDieNode
        );

        let mut t = two_die_topology();
        t.couplings.push((0, 9, 1.0));
        assert_eq!(
            DeviceThermalModel::new(t).unwrap_err(),
            ThermalError::UnknownNode { index: 9 }
        );

        let mut t = two_die_topology();
        t.roles.skin = 17;
        assert_eq!(
            DeviceThermalModel::new(t).unwrap_err(),
            ThermalError::UnknownNode { index: 17 }
        );

        let mut t = two_die_topology();
        t.nodes[0].capacitance = -1.0;
        assert!(matches!(
            DeviceThermalModel::new(t),
            Err(ThermalError::InvalidCapacitance { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "one CPU power entry per die node")]
    fn heat_load_must_match_die_count() {
        let mut model = DeviceThermalModel::new(two_die_topology()).unwrap();
        model.set_heat(HeatLoad::single(1.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn heat_load_totals_add_up() {
        let h = HeatLoad {
            die_w: vec![1.0, 0.5],
            gpu_w: 0.7,
            display_w: 0.6,
            battery_w: 0.2,
            board_w: 0.1,
        };
        assert!((h.total() - 3.1).abs() < 1e-12);
        assert_eq!(HeatLoad::single(1.0, 0.0, 0.0, 0.0, 0.0).die_w, vec![1.0]);
    }
}
