//! Time integration for the thermal ODE system.
//!
//! Two explicit schemes are provided. Forward Euler with automatic
//! sub-stepping is the default: the network precomputes half its explicit
//! stability bound `min_i C_i / ΣG_i` and the integrator never exceeds it,
//! which makes the scheme both stable and monotonic. RK4 gives 4th-order
//! accuracy for validation runs; it uses the same sub-step for safety.

use crate::network::{derivatives_into, ThermalNetwork};

/// Selects how [`ThermalNetwork::step`] advances the system.
///
/// [`ThermalNetwork::step`]: crate::ThermalNetwork::step
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrationMethod {
    /// Sub-stepped forward Euler (default). Fast, stable, monotonic.
    #[default]
    Euler,
    /// Classic 4th-order Runge–Kutta. More accurate per step; ~4× the
    /// derivative evaluations.
    Rk4,
}

/// Advances `net` by `dt` seconds using sub-stepped forward Euler.
///
/// The network's scratch buffer is borrowed in place (via
/// [`ThermalNetwork::integration_state`]) rather than moved out and
/// back each call, so the sub-step loop touches no `Vec` headers at
/// all.
pub(crate) fn euler_step(net: &mut ThermalNetwork, dt: f64) {
    let (temps, scratch, params, max_step) = net.integration_state();
    let n = temps.len();
    let (deriv, _) = scratch.split_at_mut(n);

    let mut remaining = dt;
    while remaining > 0.0 {
        let h = remaining.min(max_step);
        derivatives_into(&params, temps, deriv);
        for i in 0..n {
            temps[i] += h * deriv[i];
        }
        remaining -= h;
    }
}

/// Advances `net` by `dt` seconds using classic RK4 with the same
/// sub-stepping bound as Euler.
pub(crate) fn rk4_step(net: &mut ThermalNetwork, dt: f64) {
    let (temps, scratch, params, max_step) = net.integration_state();
    let n = temps.len();
    let (k1, rest) = scratch.split_at_mut(n);
    let (k2, rest) = rest.split_at_mut(n);
    let (k3, rest) = rest.split_at_mut(n);
    let (k4, rest) = rest.split_at_mut(n);
    let (tmp, _) = rest.split_at_mut(n);

    let mut remaining = dt;
    while remaining > 0.0 {
        let h = remaining.min(max_step);

        derivatives_into(&params, temps, k1);
        for i in 0..n {
            tmp[i] = temps[i] + 0.5 * h * k1[i];
        }
        derivatives_into(&params, tmp, k2);
        for i in 0..n {
            tmp[i] = temps[i] + 0.5 * h * k2[i];
        }
        derivatives_into(&params, tmp, k3);
        for i in 0..n {
            tmp[i] = temps[i] + h * k3[i];
        }
        derivatives_into(&params, tmp, k4);
        for i in 0..n {
            temps[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        remaining -= h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ThermalNetworkBuilder;
    use crate::units::Celsius;

    /// Single node with an ambient link has the analytic solution
    /// T(t) = T_amb + P/G + (T0 − T_amb − P/G)·exp(−G·t/C).
    fn analytic(t: f64, t0: f64, amb: f64, p: f64, g: f64, c: f64) -> f64 {
        let t_ss = amb + p / g;
        t_ss + (t0 - t_ss) * (-g * t / c).exp()
    }

    fn single_node(method: IntegrationMethod) -> crate::ThermalNetwork {
        let mut b = ThermalNetworkBuilder::new(Celsius(20.0));
        b.integration_method(method);
        let n = b.add_node("n", 10.0, Celsius(50.0)).unwrap();
        b.link_ambient(n, 0.5).unwrap();
        let mut net = b.build().unwrap();
        net.set_power(n, 1.0);
        net
    }

    #[test]
    fn euler_matches_analytic_solution() {
        let mut net = single_node(IntegrationMethod::Euler);
        let node = net.node_by_name("n").unwrap();
        net.run(30.0);
        let expected = analytic(30.0, 50.0, 20.0, 1.0, 0.5, 10.0);
        // Euler at half the stability bound trades accuracy for
        // monotonicity; a ~1 K deviation over 1.5 time constants with
        // only 3 sub-steps is its expected envelope. (Real device runs
        // step at 100 ms ≪ the bound and are far more accurate.)
        assert!(
            (net.temperature(node).value() - expected).abs() < 1.0,
            "euler {} vs analytic {}",
            net.temperature(node),
            expected
        );
    }

    #[test]
    fn rk4_matches_analytic_solution_tightly() {
        let mut net = single_node(IntegrationMethod::Rk4);
        let node = net.node_by_name("n").unwrap();
        net.run(30.0);
        let expected = analytic(30.0, 50.0, 20.0, 1.0, 0.5, 10.0);
        // RK4 at the same step size: local error ~(λh)⁵/5! per step.
        assert!(
            (net.temperature(node).value() - expected).abs() < 0.05,
            "rk4 {} vs analytic {}",
            net.temperature(node),
            expected
        );
    }

    #[test]
    fn rk4_and_euler_agree_on_long_runs() {
        let mut e = single_node(IntegrationMethod::Euler);
        let mut r = single_node(IntegrationMethod::Rk4);
        let node = e.node_by_name("n").unwrap();
        e.run(600.0);
        r.run(600.0);
        assert!((e.temperature(node) - r.temperature(node)).abs() < 0.01);
    }

    #[test]
    fn euler_is_monotonic_toward_equilibrium() {
        // Starting above the steady state with no power, temperature must
        // decrease monotonically — no oscillation from too-large steps.
        let mut net = single_node(IntegrationMethod::Euler);
        let node = net.node_by_name("n").unwrap();
        net.set_power(node, 0.0);
        let mut prev = net.temperature(node).value();
        for _ in 0..200 {
            net.step(1.0);
            let cur = net.temperature(node).value();
            assert!(cur <= prev + 1e-12, "non-monotonic: {cur} > {prev}");
            assert!(cur >= 20.0 - 1e-9, "undershoot below ambient: {cur}");
            prev = cur;
        }
    }

    #[test]
    fn default_method_is_euler() {
        assert_eq!(IntegrationMethod::default(), IntegrationMethod::Euler);
    }
}
