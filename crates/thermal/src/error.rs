//! Error type for thermal-network construction and use.

use std::error::Error;
use std::fmt;

/// Errors produced while building or driving a thermal network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A node was declared with a non-positive or non-finite heat capacity.
    InvalidCapacitance {
        /// Node name as given to the builder.
        name: String,
        /// The offending value in J/K.
        value: f64,
    },
    /// A conductance was declared with a non-positive or non-finite value.
    InvalidConductance {
        /// Description of the link ("a—b" or "node—ambient").
        link: String,
        /// The offending value in W/K.
        value: f64,
    },
    /// An initial or boundary temperature was non-physical.
    InvalidTemperature {
        /// Node name as given to the builder.
        name: String,
        /// The offending value in °C.
        value: f64,
    },
    /// Two nodes were declared with the same name.
    DuplicateNode {
        /// The duplicated name.
        name: String,
    },
    /// A coupling references the same node on both ends.
    SelfCoupling {
        /// The node name.
        name: String,
    },
    /// The same pair of nodes was coupled twice.
    DuplicateCoupling {
        /// Description of the link ("a—b").
        link: String,
    },
    /// The network has no nodes.
    EmptyNetwork,
    /// A `NodeId` from a different (or larger) network was used.
    UnknownNode {
        /// The raw index of the foreign id.
        index: usize,
    },
    /// The steady-state system is singular (no path to any fixed
    /// temperature, so the steady state is unbounded).
    SingularSystem,
    /// A boundary (fixed-temperature) node was used where a dynamic node
    /// is required, e.g. as a power-injection target.
    BoundaryNode {
        /// The node name.
        name: String,
    },
    /// A device topology declares no CPU die node — there would be
    /// nowhere to route cluster power.
    NoDieNode,
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidCapacitance { name, value } => {
                write!(f, "node `{name}` has invalid heat capacity {value} J/K")
            }
            ThermalError::InvalidConductance { link, value } => {
                write!(f, "link {link} has invalid conductance {value} W/K")
            }
            ThermalError::InvalidTemperature { name, value } => {
                write!(f, "node `{name}` has non-physical temperature {value} °C")
            }
            ThermalError::DuplicateNode { name } => {
                write!(f, "node name `{name}` declared twice")
            }
            ThermalError::SelfCoupling { name } => {
                write!(f, "node `{name}` coupled to itself")
            }
            ThermalError::DuplicateCoupling { link } => {
                write!(f, "link {link} declared twice")
            }
            ThermalError::EmptyNetwork => write!(f, "network has no nodes"),
            ThermalError::UnknownNode { index } => {
                write!(f, "node id {index} does not belong to this network")
            }
            ThermalError::SingularSystem => {
                write!(
                    f,
                    "steady-state system is singular: some node has no path to a fixed temperature"
                )
            }
            ThermalError::BoundaryNode { name } => {
                write!(f, "node `{name}` is a fixed-temperature boundary node")
            }
            ThermalError::NoDieNode => {
                write!(f, "topology declares no CPU die node")
            }
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ThermalError::InvalidCapacitance {
            name: "die".into(),
            value: -1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("die"));
        assert!(msg.contains("-1"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ThermalError>();
    }

    #[test]
    fn all_variants_display() {
        let variants = vec![
            ThermalError::InvalidCapacitance {
                name: "x".into(),
                value: 0.0,
            },
            ThermalError::InvalidConductance {
                link: "a—b".into(),
                value: -2.0,
            },
            ThermalError::InvalidTemperature {
                name: "x".into(),
                value: -400.0,
            },
            ThermalError::DuplicateNode { name: "x".into() },
            ThermalError::SelfCoupling { name: "x".into() },
            ThermalError::DuplicateCoupling {
                link: "a—b".into()
            },
            ThermalError::EmptyNetwork,
            ThermalError::UnknownNode { index: 9 },
            ThermalError::SingularSystem,
            ThermalError::BoundaryNode {
                name: "hand".into(),
            },
            ThermalError::NoDieNode,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
