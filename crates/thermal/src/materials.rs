//! Material properties for building physically-plausible phone models.
//!
//! Heat capacities for the lumped nodes of [`crate::phone`] are derived
//! from component masses and specific heats; the constants here document
//! where the numbers come from.

/// Specific heat capacity of a material, J/(g·K).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecificHeat(pub f64);

/// Common smartphone materials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Material {
    /// Silicon die.
    Silicon,
    /// FR-4 printed circuit board.
    Fr4,
    /// Lithium-ion battery cell (average over jelly roll + casing).
    LithiumIon,
    /// Polycarbonate back cover.
    Polycarbonate,
    /// Aluminosilicate cover glass (Gorilla-glass class).
    CoverGlass,
    /// Aluminium frame.
    Aluminium,
    /// Copper heat spreader / ground plane.
    Copper,
}

impl Material {
    /// Specific heat of the material.
    pub fn specific_heat(self) -> SpecificHeat {
        // Textbook values, J/(g·K).
        match self {
            Material::Silicon => SpecificHeat(0.71),
            Material::Fr4 => SpecificHeat(1.10),
            Material::LithiumIon => SpecificHeat(0.90),
            Material::Polycarbonate => SpecificHeat(1.20),
            Material::CoverGlass => SpecificHeat(0.84),
            Material::Aluminium => SpecificHeat(0.90),
            Material::Copper => SpecificHeat(0.385),
        }
    }

    /// Lumped heat capacity (J/K) of `grams` of this material.
    ///
    /// ```
    /// use usta_thermal::materials::Material;
    ///
    /// // A 50 g lithium-ion cell stores 45 J per kelvin.
    /// let c = Material::LithiumIon.capacitance_of_grams(50.0);
    /// assert!((c - 45.0).abs() < 1e-9);
    /// ```
    pub fn capacitance_of_grams(self, grams: f64) -> f64 {
        self.specific_heat().0 * grams
    }
}

/// Convective + radiative surface conductance to ambient (W/K) for a flat
/// surface of `area_cm2` square centimetres in still air.
///
/// Uses a combined film coefficient of ~14 W/(m²·K) (natural convection
/// ≈ 8 plus linearized radiation ≈ 6 at skin-adjacent temperatures),
/// which is why a whole phone only sheds ~0.3–0.4 W/K — the root cause of
/// the paper's skin-temperature problem.
pub fn surface_conductance(area_cm2: f64) -> f64 {
    const FILM_COEFF_W_PER_M2K: f64 = 14.0;
    FILM_COEFF_W_PER_M2K * area_cm2 * 1e-4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_scales_linearly_with_mass() {
        let one = Material::Silicon.capacitance_of_grams(1.0);
        let ten = Material::Silicon.capacitance_of_grams(10.0);
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn phone_sized_surface_sheds_fraction_of_watt_per_kelvin() {
        // Nexus 4 face ≈ 13.4 cm × 6.9 cm ≈ 92 cm².
        let g = surface_conductance(92.0);
        assert!(g > 0.08 && g < 0.2, "surface conductance {g} W/K");
    }

    #[test]
    fn all_materials_have_positive_specific_heat() {
        let mats = [
            Material::Silicon,
            Material::Fr4,
            Material::LithiumIon,
            Material::Polycarbonate,
            Material::CoverGlass,
            Material::Aluminium,
            Material::Copper,
        ];
        for m in mats {
            assert!(m.specific_heat().0 > 0.0);
        }
    }
}
