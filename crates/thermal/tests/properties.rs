//! Property-based tests for the thermal network invariants.

use proptest::prelude::*;
use usta_thermal::{Celsius, ThermalNetworkBuilder};

/// Builds a random star network: `n` leaf nodes all coupled to a hub,
/// hub linked to ambient.
fn star(
    n: usize,
    caps: &[f64],
    couplings: &[f64],
    g_amb: f64,
    initial: &[f64],
    ambient: f64,
) -> usta_thermal::ThermalNetwork {
    let mut b = ThermalNetworkBuilder::new(Celsius(ambient));
    let hub = b.add_node("hub", caps[0], Celsius(initial[0])).unwrap();
    b.link_ambient(hub, g_amb).unwrap();
    for i in 0..n {
        let leaf = b
            .add_node(&format!("leaf{i}"), caps[i + 1], Celsius(initial[i + 1]))
            .unwrap();
        b.couple(hub, leaf, couplings[i]).unwrap();
    }
    b.build().unwrap()
}

fn plausible_cap() -> impl Strategy<Value = f64> {
    0.5f64..60.0
}

fn plausible_g() -> impl Strategy<Value = f64> {
    0.05f64..2.0
}

fn plausible_t() -> impl Strategy<Value = f64> {
    0.0f64..80.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no power, all temperatures stay inside the initial
    /// min/max envelope extended by the ambient (comparison principle).
    #[test]
    fn unpowered_temperatures_stay_in_envelope(
        caps in proptest::collection::vec(plausible_cap(), 4),
        gs in proptest::collection::vec(plausible_g(), 3),
        g_amb in plausible_g(),
        init in proptest::collection::vec(plausible_t(), 4),
        ambient in plausible_t(),
        steps in 1usize..50,
    ) {
        let mut net = star(3, &caps, &gs, g_amb, &init, ambient);
        let lo = init.iter().copied().fold(ambient, f64::min);
        let hi = init.iter().copied().fold(ambient, f64::max);
        for _ in 0..steps {
            net.step(7.5);
            for id in net.node_ids().collect::<Vec<_>>() {
                let t = net.temperature(id).value();
                prop_assert!(t >= lo - 1e-6, "node below envelope: {t} < {lo}");
                prop_assert!(t <= hi + 1e-6, "node above envelope: {t} > {hi}");
            }
        }
    }

    /// Forward-Euler steps conserve energy exactly per sub-step:
    /// ΔE_stored == (P_in − P_out)·dt accumulated over the run.
    #[test]
    fn energy_is_conserved(
        caps in proptest::collection::vec(plausible_cap(), 4),
        gs in proptest::collection::vec(plausible_g(), 3),
        g_amb in plausible_g(),
        init in proptest::collection::vec(plausible_t(), 4),
        power in 0.0f64..8.0,
    ) {
        let mut net = star(3, &caps, &gs, g_amb, &init, 24.0);
        let hub = net.node_by_name("hub").unwrap();
        net.set_power(hub, power);
        let mut expected_delta = 0.0;
        let before = net.stored_energy();
        // Integrate with the network's own sub-step so outflow is piecewise
        // constant per step and the balance is exact.
        let dt = net.max_stable_step();
        for _ in 0..200 {
            expected_delta += (power - net.outflow()) * dt;
            net.step(dt);
        }
        let actual_delta = net.stored_energy() - before;
        prop_assert!(
            (actual_delta - expected_delta).abs() < 1e-6 * (1.0 + expected_delta.abs()),
            "energy drift: {actual_delta} vs {expected_delta}"
        );
    }

    /// Steady state solved linearly equals the long-run simulation.
    #[test]
    fn steady_state_is_attractor(
        caps in proptest::collection::vec(plausible_cap(), 4),
        gs in proptest::collection::vec(plausible_g(), 3),
        g_amb in plausible_g(),
        power in 0.0f64..6.0,
    ) {
        let init = vec![25.0; 4];
        let mut net = star(3, &caps, &gs, g_amb, &init, 25.0);
        let hub = net.node_by_name("hub").unwrap();
        net.set_power(hub, power);
        let predicted = usta_thermal::analysis::steady_state(&net).unwrap();
        // Run at least 15 of the slowest time constant. The slowest mode
        // is bounded by the slower of (a) the whole network relaxing
        // through the ambient link and (b) any single leaf relaxing
        // through its coupling.
        let tau_net = caps.iter().sum::<f64>() / g_amb;
        let tau_leaf = caps[1..]
            .iter()
            .zip(&gs)
            .map(|(c, g)| c / g)
            .fold(0.0f64, f64::max);
        net.run(tau_net.max(tau_leaf) * 15.0);
        for (id, p) in net.node_ids().collect::<Vec<_>>().into_iter().zip(&predicted) {
            let got = net.temperature(id).value();
            prop_assert!(
                (got - p.value()).abs() < 0.02 * (1.0 + p.value().abs()),
                "node {}: {got} vs steady {p}", net.node_name(id)
            );
        }
    }

    /// More power never yields lower temperatures (monotonicity of the
    /// steady state in the power input).
    #[test]
    fn steady_state_monotone_in_power(
        caps in proptest::collection::vec(plausible_cap(), 4),
        gs in proptest::collection::vec(plausible_g(), 3),
        g_amb in plausible_g(),
        p_low in 0.0f64..3.0,
        extra in 0.01f64..3.0,
    ) {
        let init = vec![25.0; 4];
        let mut net = star(3, &caps, &gs, g_amb, &init, 25.0);
        let hub = net.node_by_name("hub").unwrap();
        net.set_power(hub, p_low);
        let low = usta_thermal::analysis::steady_state(&net).unwrap();
        net.set_power(hub, p_low + extra);
        let high = usta_thermal::analysis::steady_state(&net).unwrap();
        for (l, h) in low.iter().zip(&high) {
            prop_assert!(h.value() >= l.value() - 1e-9);
        }
    }

    /// Elapsed time accumulates exactly the requested durations.
    #[test]
    fn elapsed_time_accumulates(durations in proptest::collection::vec(0.1f64..30.0, 1..20)) {
        let caps = vec![1.0, 2.0, 3.0, 4.0];
        let gs = vec![0.5, 0.5, 0.5];
        let init = vec![25.0; 4];
        let mut net = star(3, &caps, &gs, 0.2, &init, 25.0);
        let mut total = 0.0;
        for d in &durations {
            net.step(*d);
            total += d;
        }
        prop_assert!((net.elapsed() - total).abs() < 1e-9);
    }
}
