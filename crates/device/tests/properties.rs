//! Property tests for the device registry: every registered spec is
//! valid, OPP power is strictly increasing in frequency, and id lookup
//! round-trips `NAMES` under arbitrary ASCII case-mangling.

use proptest::prelude::*;
use usta_device::{by_id, Registry, NAMES};

proptest! {
    #[test]
    fn every_registered_spec_passes_validation(index in 0usize..NAMES.len()) {
        let spec = &Registry::builtin().specs()[index];
        prop_assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn opp_power_strictly_increases_with_frequency(index in 0usize..NAMES.len()) {
        let spec = &Registry::builtin().specs()[index];
        for cluster in &spec.clusters {
            for i in 1..cluster.opp.len() {
                prop_assert!(cluster.opp[i].khz > cluster.opp[i - 1].khz);
                prop_assert!(
                    cluster.opp_dynamic_power_w(i) > cluster.opp_dynamic_power_w(i - 1),
                    "{}/{}: power must rise {} -> {}", spec.id, cluster.name, i - 1, i
                );
            }
        }
    }

    #[test]
    fn clusters_are_big_first_with_positive_power_weights(index in 0usize..NAMES.len()) {
        let spec = &Registry::builtin().specs()[index];
        prop_assert!(!spec.clusters.is_empty());
        for pair in spec.clusters.windows(2) {
            prop_assert!(pair[0].max_khz() >= pair[1].max_khz(), "{}", spec.id);
        }
        for cluster in &spec.clusters {
            prop_assert!(cluster.full_load_w() > 0.0, "{}/{}", spec.id, cluster.name);
        }
    }

    #[test]
    fn by_id_round_trips_names_case_insensitively(
        index in 0usize..NAMES.len(),
        flips in proptest::collection::vec(proptest::bool::ANY, 16),
    ) {
        let name = NAMES[index];
        let mangled: String = name
            .chars()
            .zip(flips.iter().cycle())
            .map(|(c, &up)| if up { c.to_ascii_uppercase() } else { c })
            .collect();
        let spec = by_id(&mangled);
        prop_assert!(spec.is_some(), "{mangled:?} should resolve");
        prop_assert_eq!(spec.unwrap().id, name);
    }

    #[test]
    fn unknown_ids_never_resolve(
        letters in proptest::collection::vec(0u8..26, 1..8),
    ) {
        // No built-in id survives an extra alphabetic suffix.
        let suffix: String = letters.iter().map(|&b| (b'a' + b) as char).collect();
        for name in NAMES {
            let unknown = format!("{name}{suffix}");
            prop_assert!(by_id(&unknown).is_none());
        }
    }
}

#[test]
fn registry_order_matches_names() {
    assert_eq!(Registry::builtin().ids().collect::<Vec<_>>(), NAMES);
}
