//! # usta-device — the data-driven device catalog
//!
//! The paper evaluates USTA on exactly one handset (a Google Nexus 4),
//! but nothing in the idea is device-specific: any platform with a
//! cpufreq OPP table, a power model, and an exterior the user touches
//! can run a user-specific skin-temperature governor — and commercial
//! platforms differ widely in power and thermal behaviour (Bhat et al.,
//! *Power and Thermal Analysis of Commercial Mobile Platforms*). This
//! crate turns the reproduction's hardwired Nexus-4 constants into
//! data: a [`DeviceSpec`] bundles everything the simulator needs to
//! instantiate a device —
//!
//! * one [`ClusterSpec`] per frequency domain — its core count, OPP
//!   table (frequency/voltage pairs), and per-frequency power
//!   coefficients; big.LITTLE parts declare two clusters, big first,
//! * display and battery power models,
//! * the back-cover material and a declarative [`ThermalSpec`] —
//!   named RC nodes with **one die node per cluster**, conductance
//!   edges, and skin/screen/back designations — lowered to a
//!   `usta_thermal::ThermalTopology` at device construction,
//!
//! and a [`Registry`] validates specs at construction (monotone OPP
//! power, positive capacitances and conductances, per-cluster die
//! nodes, connected thermal graph) and resolves ids for CLIs. The
//! built-in catalog ([`NAMES`]) ships five devices:
//!
//! | id | domains | die nodes | class |
//! |---|---|---|---|
//! | `nexus4` | 1 (`cpu`, 4 cores) | `cpu` | the paper's quad-core handset, bit-for-bit the seed's calibrated constants |
//! | `flagship-octa` | 2 (`big`+`little`, 4+4 cores) | `die_big`, `die_little` | a big.LITTLE octa-core flagship with per-cluster frequency domains |
//! | `prime-flagship` | 3 (`prime`+`big`+`little`, 1+3+4 cores) | `die_prime`, `die_big`, `die_little` | a three-domain flagship with a 2.84 GHz prime core |
//! | `tablet-10in` | 1 (`cpu`, 6 cores) | `cpu` | a tablet with several times the phone's thermal mass |
//! | `budget-quad` | 1 (`cpu`, 4 cores) | `cpu` | a low-end quad-core with a shallow OPP table |
//!
//! ```
//! use usta_device::{by_id, Registry, NAMES};
//!
//! let nexus4 = by_id("nexus4").expect("built-in");
//! assert_eq!(nexus4.domains(), 1);
//! assert_eq!(nexus4.cores(), 4);
//! assert_eq!(nexus4.clusters[0].opp.len(), 12);
//! let flagship = by_id("flagship-octa").expect("built-in");
//! assert_eq!(flagship.topology(), "4+4");
//! assert!(Registry::builtin().by_id("FLAGSHIP-OCTA").is_some()); // case-insensitive
//! assert_eq!(NAMES.len(), Registry::builtin().len());
//! ```
//!
//! Dependency direction: this crate sits between `usta-thermal` (whose
//! topology types its `ThermalSpec` lowers into) and `usta-soc` (which
//! builds its `OppTable`/`CpuPowerModel`/`Battery`/`Display` instances
//! *from* a spec — see `usta_soc::spec`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod error;
pub mod registry;
pub mod spec;
pub mod thermal;

pub use catalog::{budget_quad, flagship_octa, nexus4, prime_flagship, tablet_10in};
pub use error::DeviceError;
pub use registry::{
    by_id, install, merged, merged_ids, try_by_id, Registry, UnknownDeviceError, NAMES,
};
pub use spec::{
    BatterySpec, ClusterSpec, CpuPowerSpec, DeviceSpec, DisplaySpec, GpuDomainSpec, GpuPowerSpec,
    OppPoint, MAX_CPU_CLUSTERS, MAX_FREQ_DOMAINS,
};
pub use thermal::{ThermalNodeSpec, ThermalSpec};
