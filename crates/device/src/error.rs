//! Validation errors for device specs and registries.

/// Why a [`crate::DeviceSpec`] (or a [`crate::Registry`]) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The id is empty or contains characters outside `[a-z0-9-]`
    /// (ids double as CLI tokens and file-name fragments).
    InvalidId(String),
    /// The spec has no OPP levels.
    EmptyOppTable,
    /// OPP frequencies are not strictly increasing at this index.
    NonMonotoneOppFrequency {
        /// Index of the offending level.
        index: usize,
    },
    /// Full-utilization dynamic power is not strictly increasing in
    /// frequency at this index — a table like that would make "lower
    /// the cap one level" meaningless for the banding policy.
    NonMonotoneOppPower {
        /// Index of the offending level.
        index: usize,
    },
    /// A scalar parameter is non-finite or out of its physical range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Two registry specs share an id (after ASCII lowercasing).
    DuplicateId(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidId(id) => {
                write!(f, "device id {id:?} must be non-empty [a-z0-9-]")
            }
            DeviceError::EmptyOppTable => write!(f, "device spec has no OPP levels"),
            DeviceError::NonMonotoneOppFrequency { index } => {
                write!(f, "OPP frequency not strictly increasing at level {index}")
            }
            DeviceError::NonMonotoneOppPower { index } => {
                write!(
                    f,
                    "OPP dynamic power not strictly increasing at level {index}"
                )
            }
            DeviceError::InvalidParameter { name, value } => {
                write!(f, "device parameter {name} = {value} out of range")
            }
            DeviceError::DuplicateId(id) => write!(f, "duplicate device id {id:?}"),
        }
    }
}

impl std::error::Error for DeviceError {}
