//! Validation errors for device specs and registries.

/// Why a [`crate::DeviceSpec`] (or a [`crate::Registry`]) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The id is empty or contains characters outside `[a-z0-9-]`
    /// (ids double as CLI tokens and file-name fragments).
    InvalidId(String),
    /// The spec declares no frequency domains.
    NoClusters,
    /// The spec declares more clusters than
    /// [`crate::spec::MAX_FREQ_DOMAINS`].
    TooManyClusters {
        /// How many clusters the spec declared.
        count: usize,
    },
    /// A cluster name is empty or contains characters outside
    /// `[a-z0-9-]` (names become trace-CSV columns and report rows).
    InvalidClusterName(String),
    /// Two clusters of one device share a name.
    DuplicateClusterName(String),
    /// Clusters are not in big-first order (non-increasing top
    /// frequency) at this index — the spill scheduler depends on it.
    ClustersNotBigFirst {
        /// Index of the cluster that out-clocks its predecessor.
        index: usize,
    },
    /// A cluster has no OPP levels.
    EmptyOppTable,
    /// OPP frequencies are not strictly increasing at this index.
    NonMonotoneOppFrequency {
        /// Index of the offending level.
        index: usize,
    },
    /// Full-utilization dynamic power is not strictly increasing in
    /// frequency at this index — a table like that would make "lower
    /// the cap one level" meaningless for the banding policy.
    NonMonotoneOppPower {
        /// Index of the offending level.
        index: usize,
    },
    /// A scalar parameter is non-finite or out of its physical range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A thermal node name is empty or contains characters outside
    /// `[a-z0-9_-]` (names become trace columns and report rows).
    InvalidThermalNodeName(String),
    /// Two thermal nodes share a name, or one node was designated as
    /// the die of two different clusters.
    DuplicateThermalNode(String),
    /// A thermal edge or role designation references a node the spec
    /// never declared.
    UnknownThermalNode(String),
    /// The spec does not declare exactly one die node per cluster, so
    /// cluster power could not be attributed to the die.
    DieNodeMismatch {
        /// How many die nodes the thermal spec designates.
        die_nodes: usize,
        /// How many clusters the device declares.
        clusters: usize,
    },
    /// A thermal node has no path to ambient through the coupling
    /// graph — its steady state would be unbounded.
    DisconnectedThermalNode(String),
    /// A thermal coupling is malformed (self-loop or duplicate pair).
    InvalidThermalCoupling(String),
    /// Two registry specs share an id (after ASCII lowercasing).
    DuplicateId(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidId(id) => {
                write!(f, "device id {id:?} must be non-empty [a-z0-9-]")
            }
            DeviceError::NoClusters => write!(f, "device spec declares no frequency domains"),
            DeviceError::TooManyClusters { count } => {
                write!(f, "device spec declares {count} clusters (max 4)")
            }
            DeviceError::InvalidClusterName(name) => {
                write!(f, "cluster name {name:?} must be non-empty [a-z0-9-]")
            }
            DeviceError::DuplicateClusterName(name) => {
                write!(f, "duplicate cluster name {name:?}")
            }
            DeviceError::ClustersNotBigFirst { index } => {
                write!(
                    f,
                    "cluster {index} out-clocks its predecessor (clusters must be big-first)"
                )
            }
            DeviceError::EmptyOppTable => write!(f, "cluster has no OPP levels"),
            DeviceError::NonMonotoneOppFrequency { index } => {
                write!(f, "OPP frequency not strictly increasing at level {index}")
            }
            DeviceError::NonMonotoneOppPower { index } => {
                write!(
                    f,
                    "OPP dynamic power not strictly increasing at level {index}"
                )
            }
            DeviceError::InvalidParameter { name, value } => {
                write!(f, "device parameter {name} = {value} out of range")
            }
            DeviceError::InvalidThermalNodeName(name) => {
                write!(f, "thermal node name {name:?} must be non-empty [a-z0-9_-]")
            }
            DeviceError::DuplicateThermalNode(name) => {
                write!(f, "thermal node {name:?} declared or designated twice")
            }
            DeviceError::UnknownThermalNode(name) => {
                write!(f, "thermal spec references undeclared node {name:?}")
            }
            DeviceError::DieNodeMismatch {
                die_nodes,
                clusters,
            } => {
                write!(
                    f,
                    "thermal spec designates {die_nodes} die node(s) for {clusters} cluster(s)"
                )
            }
            DeviceError::DisconnectedThermalNode(name) => {
                write!(f, "thermal node {name:?} has no path to ambient")
            }
            DeviceError::InvalidThermalCoupling(what) => {
                write!(f, "invalid thermal coupling {what}")
            }
            DeviceError::DuplicateId(id) => write!(f, "duplicate device id {id:?}"),
        }
    }
}

impl std::error::Error for DeviceError {}
