//! Id-based spec lookup for CLIs, sweeps, and benches.
//!
//! Two registries live here: the immutable built-in catalog
//! ([`Registry::builtin`], [`NAMES`]) and a process-wide *merged* view
//! that overlays extras [`install`]ed at runtime — typically file
//! entries loaded by `usta-catalog`. The free functions
//! ([`by_id`], [`try_by_id`], [`merged`], [`merged_ids`]) consult the
//! merged view, so a CLI that installs a catalog once at startup makes
//! every downstream lookup, `--device all` expansion, and "unknown
//! device" listing see the merged set. With nothing installed the
//! merged view **is** the built-in catalog, bit for bit.

use std::sync::{OnceLock, RwLock};

use crate::catalog::{budget_quad, flagship_octa, nexus4, prime_flagship, tablet_10in};
use crate::error::DeviceError;
use crate::spec::DeviceSpec;

/// Ids of every built-in device, in catalog order (the paper's device
/// first) — useful for `--help` text and CI loops.
pub const NAMES: [&str; 5] = [
    "nexus4",
    "flagship-octa",
    "prime-flagship",
    "tablet-10in",
    "budget-quad",
];

/// A validated set of device specs addressable by id.
///
/// Construction validates every spec and rejects duplicate ids, so a
/// spec obtained from a registry never needs re-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    specs: Vec<DeviceSpec>,
}

impl Registry {
    /// Builds a registry from specs, validating each.
    ///
    /// # Errors
    ///
    /// Returns the first failing spec's [`DeviceError`], or
    /// [`DeviceError::DuplicateId`] when two specs share an id.
    pub fn new(specs: Vec<DeviceSpec>) -> Result<Registry, DeviceError> {
        for (i, spec) in specs.iter().enumerate() {
            spec.validate()?;
            if specs[..i]
                .iter()
                .any(|s| s.id.eq_ignore_ascii_case(spec.id))
            {
                return Err(DeviceError::DuplicateId(spec.id.to_owned()));
            }
        }
        Ok(Registry { specs })
    }

    /// The built-in catalog ([`NAMES`] order), validated once per
    /// process.
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            Registry::new(vec![
                nexus4(),
                flagship_octa(),
                prime_flagship(),
                tablet_10in(),
                budget_quad(),
            ])
            .expect("built-in catalog validates")
        })
    }

    /// Looks a spec up by id, ASCII case-insensitively.
    pub fn by_id(&self, id: &str) -> Option<&DeviceSpec> {
        self.specs.iter().find(|s| s.id.eq_ignore_ascii_case(id))
    }

    /// The specs, in registry order.
    pub fn specs(&self) -> &[DeviceSpec] {
        &self.specs
    }

    /// The ids, in registry order.
    pub fn ids(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.specs.iter().map(|s| s.id)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the registry holds no specs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Runtime-installed extras overlaying the built-in catalog, in
/// install order. Leaked `&'static` specs: installs are rare (one
/// catalog load per CLI invocation) and specs live for the process
/// anyway.
fn extras() -> &'static RwLock<Vec<&'static DeviceSpec>> {
    static EXTRAS: OnceLock<RwLock<Vec<&'static DeviceSpec>>> = OnceLock::new();
    EXTRAS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Validates `spec` and installs it into the process-wide merged
/// registry: a spec whose id matches an earlier install replaces it; a
/// new id is appended after the built-ins. Ids are matched ASCII
/// case-insensitively.
///
/// The spec is leaked to `'static` — intended for one-shot catalog
/// loads at CLI startup, not for churning specs in a loop.
///
/// # Errors
///
/// Returns the [`DeviceError`] when `spec` fails validation; the
/// registry is unchanged.
pub fn install(spec: DeviceSpec) -> Result<&'static DeviceSpec, DeviceError> {
    spec.validate()?;
    let leaked: &'static DeviceSpec = Box::leak(Box::new(spec));
    let mut extras = extras().write().expect("device registry lock poisoned");
    match extras
        .iter_mut()
        .find(|s| s.id.eq_ignore_ascii_case(leaked.id))
    {
        Some(slot) => *slot = leaked,
        None => extras.push(leaked),
    }
    Ok(leaked)
}

/// The merged registry view: the built-ins in [`NAMES`] order (each
/// replaced by a same-id [`install`]ed extra, if any), followed by
/// extras with new ids in install order.
pub fn merged() -> Vec<&'static DeviceSpec> {
    let extras = extras().read().expect("device registry lock poisoned");
    let mut specs: Vec<&'static DeviceSpec> = Registry::builtin()
        .specs()
        .iter()
        .map(|builtin| {
            extras
                .iter()
                .copied()
                .find(|e| e.id.eq_ignore_ascii_case(builtin.id))
                .unwrap_or(builtin)
        })
        .collect();
    for &extra in extras.iter() {
        if !specs.iter().any(|s| s.id.eq_ignore_ascii_case(extra.id)) {
            specs.push(extra);
        }
    }
    specs
}

/// Ids of the merged registry, in [`merged`] order. Equals [`NAMES`]
/// until something is [`install`]ed.
pub fn merged_ids() -> Vec<&'static str> {
    merged().iter().map(|s| s.id).collect()
}

/// Looks a spec up by id in the merged registry (installed extras
/// override built-ins), ASCII case-insensitively.
///
/// ```
/// use usta_device::by_id;
///
/// assert_eq!(by_id("nexus4").unwrap().cores(), 4);
/// assert_eq!(by_id("Tablet-10in").unwrap().cores(), 6);
/// assert_eq!(by_id("flagship-octa").unwrap().domains(), 2);
/// assert!(by_id("pixel-9").is_none());
/// ```
pub fn by_id(id: &str) -> Option<&'static DeviceSpec> {
    if let Some(&spec) = extras()
        .read()
        .expect("device registry lock poisoned")
        .iter()
        .find(|s| s.id.eq_ignore_ascii_case(id))
    {
        return Some(spec);
    }
    Registry::builtin().by_id(id)
}

/// The error [`try_by_id`] returns for unknown device ids. Its
/// `Display` lists the *merged* registry's ids ([`merged_ids`] —
/// [`NAMES`] plus anything [`install`]ed), so CLIs can surface it
/// verbatim — the single source of the "unknown device" wording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDeviceError {
    name: String,
}

impl UnknownDeviceError {
    /// An error for the given unresolved name.
    pub fn new(name: impl Into<String>) -> UnknownDeviceError {
        UnknownDeviceError { name: name.into() }
    }

    /// The name that failed to resolve.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Display for UnknownDeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown device {:?} (known: {})",
            self.name,
            merged_ids().join(", ")
        )
    }
}

impl std::error::Error for UnknownDeviceError {}

/// [`by_id`] with a CLI-ready error: ASCII case-insensitive, and the
/// failure message lists every merged-registry id.
///
/// # Errors
///
/// Returns [`UnknownDeviceError`] when `id` matches no merged spec.
pub fn try_by_id(id: &str) -> Result<&'static DeviceSpec, UnknownDeviceError> {
    by_id(id).ok_or_else(|| UnknownDeviceError::new(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_by_id() {
        for name in NAMES {
            let spec = by_id(name).unwrap_or_else(|| panic!("{name} should resolve"));
            assert_eq!(spec.id, name);
            // Case-insensitive lookup resolves to the same spec.
            assert_eq!(by_id(&name.to_ascii_uppercase()), Some(spec));
        }
        assert_eq!(Registry::builtin().len(), NAMES.len());
        assert_eq!(Registry::builtin().ids().collect::<Vec<_>>(), NAMES);
    }

    #[test]
    fn unknown_ids_are_none() {
        assert!(by_id("").is_none());
        assert!(by_id("nexus4 ").is_none());
        assert!(by_id("iphone").is_none());
    }

    #[test]
    fn try_by_id_error_lists_every_builtin_id() {
        let err = try_by_id("iphone").unwrap_err();
        assert_eq!(err.name(), "iphone");
        let message = err.to_string();
        assert!(message.contains("\"iphone\""), "{message:?}");
        for name in NAMES {
            assert!(message.contains(name), "{message:?} should list {name}");
        }
        assert_eq!(try_by_id("NEXUS4").unwrap().id, "nexus4");
    }

    #[test]
    fn duplicate_ids_rejected_case_insensitively() {
        let err = Registry::new(vec![crate::nexus4(), crate::nexus4()]);
        assert_eq!(err, Err(DeviceError::DuplicateId("nexus4".to_owned())));
    }

    #[test]
    fn invalid_spec_rejected_at_registry_construction() {
        let mut bad = crate::nexus4();
        bad.clusters[0].opp.clear();
        assert_eq!(Registry::new(vec![bad]), Err(DeviceError::EmptyOppTable));
    }

    #[test]
    fn install_overlays_and_replaces_extras() {
        // Unique ids: the extras overlay is process-global and other
        // tests in this binary observe it.
        let mut spec = crate::budget_quad();
        spec.id = "registry-test-extra";
        spec.description = "first install";
        let installed = install(spec.clone()).expect("valid spec installs");
        assert_eq!(installed.id, "registry-test-extra");
        assert_eq!(by_id("REGISTRY-TEST-EXTRA"), Some(installed));
        assert!(merged_ids().contains(&"registry-test-extra"));
        // Built-ins stay in NAMES order at the front of the merged view.
        assert_eq!(&merged_ids()[..NAMES.len()], &NAMES);
        // Unknown-device errors now list the extra.
        let message = try_by_id("iphone").unwrap_err().to_string();
        assert!(message.contains("registry-test-extra"), "{message:?}");

        // A same-id re-install replaces, not duplicates.
        spec.description = "second install";
        install(spec).expect("replacement installs");
        assert_eq!(
            by_id("registry-test-extra").map(|s| s.description),
            Some("second install")
        );
        assert_eq!(
            merged_ids()
                .iter()
                .filter(|&&id| id == "registry-test-extra")
                .count(),
            1
        );
    }

    #[test]
    fn install_rejects_invalid_specs_without_registering() {
        let mut bad = crate::budget_quad();
        bad.id = "registry-test-bad";
        bad.clusters[0].opp.clear();
        assert_eq!(install(bad), Err(DeviceError::EmptyOppTable));
        assert!(by_id("registry-test-bad").is_none());
    }

    #[test]
    fn custom_registry_is_independent_of_builtin() {
        let r = Registry::new(vec![crate::budget_quad()]).unwrap();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.by_id("nexus4").is_none());
        assert!(r.by_id("BUDGET-QUAD").is_some());
        assert_eq!(r.specs()[0].id, "budget-quad");
    }
}
