//! Id-based spec lookup for CLIs, sweeps, and benches.

use std::sync::OnceLock;

use crate::catalog::{budget_quad, flagship_octa, nexus4, prime_flagship, tablet_10in};
use crate::error::DeviceError;
use crate::spec::DeviceSpec;

/// Ids of every built-in device, in catalog order (the paper's device
/// first) — useful for `--help` text and CI loops.
pub const NAMES: [&str; 5] = [
    "nexus4",
    "flagship-octa",
    "prime-flagship",
    "tablet-10in",
    "budget-quad",
];

/// A validated set of device specs addressable by id.
///
/// Construction validates every spec and rejects duplicate ids, so a
/// spec obtained from a registry never needs re-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    specs: Vec<DeviceSpec>,
}

impl Registry {
    /// Builds a registry from specs, validating each.
    ///
    /// # Errors
    ///
    /// Returns the first failing spec's [`DeviceError`], or
    /// [`DeviceError::DuplicateId`] when two specs share an id.
    pub fn new(specs: Vec<DeviceSpec>) -> Result<Registry, DeviceError> {
        for (i, spec) in specs.iter().enumerate() {
            spec.validate()?;
            if specs[..i]
                .iter()
                .any(|s| s.id.eq_ignore_ascii_case(spec.id))
            {
                return Err(DeviceError::DuplicateId(spec.id.to_owned()));
            }
        }
        Ok(Registry { specs })
    }

    /// The built-in catalog ([`NAMES`] order), validated once per
    /// process.
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            Registry::new(vec![
                nexus4(),
                flagship_octa(),
                prime_flagship(),
                tablet_10in(),
                budget_quad(),
            ])
            .expect("built-in catalog validates")
        })
    }

    /// Looks a spec up by id, ASCII case-insensitively.
    pub fn by_id(&self, id: &str) -> Option<&DeviceSpec> {
        self.specs.iter().find(|s| s.id.eq_ignore_ascii_case(id))
    }

    /// The specs, in registry order.
    pub fn specs(&self) -> &[DeviceSpec] {
        &self.specs
    }

    /// The ids, in registry order.
    pub fn ids(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.specs.iter().map(|s| s.id)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the registry holds no specs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Looks a built-in spec up by id, ASCII case-insensitively.
///
/// ```
/// use usta_device::by_id;
///
/// assert_eq!(by_id("nexus4").unwrap().cores(), 4);
/// assert_eq!(by_id("Tablet-10in").unwrap().cores(), 6);
/// assert_eq!(by_id("flagship-octa").unwrap().domains(), 2);
/// assert!(by_id("pixel-9").is_none());
/// ```
pub fn by_id(id: &str) -> Option<&'static DeviceSpec> {
    Registry::builtin().by_id(id)
}

/// The error [`try_by_id`] returns for unknown device ids. Its
/// `Display` lists [`NAMES`], so CLIs can surface it verbatim — the
/// single source of the "unknown device" wording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDeviceError {
    name: String,
}

impl UnknownDeviceError {
    /// An error for the given unresolved name.
    pub fn new(name: impl Into<String>) -> UnknownDeviceError {
        UnknownDeviceError { name: name.into() }
    }

    /// The name that failed to resolve.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Display for UnknownDeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown device {:?} (known: {})",
            self.name,
            NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownDeviceError {}

/// [`by_id`] with a CLI-ready error: ASCII case-insensitive, and the
/// failure message lists every built-in id.
///
/// # Errors
///
/// Returns [`UnknownDeviceError`] when `id` matches no built-in spec.
pub fn try_by_id(id: &str) -> Result<&'static DeviceSpec, UnknownDeviceError> {
    by_id(id).ok_or_else(|| UnknownDeviceError::new(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_by_id() {
        for name in NAMES {
            let spec = by_id(name).unwrap_or_else(|| panic!("{name} should resolve"));
            assert_eq!(spec.id, name);
            // Case-insensitive lookup resolves to the same spec.
            assert_eq!(by_id(&name.to_ascii_uppercase()), Some(spec));
        }
        assert_eq!(Registry::builtin().len(), NAMES.len());
        assert_eq!(Registry::builtin().ids().collect::<Vec<_>>(), NAMES);
    }

    #[test]
    fn unknown_ids_are_none() {
        assert!(by_id("").is_none());
        assert!(by_id("nexus4 ").is_none());
        assert!(by_id("iphone").is_none());
    }

    #[test]
    fn try_by_id_error_lists_every_builtin_id() {
        let err = try_by_id("iphone").unwrap_err();
        assert_eq!(err.name(), "iphone");
        let message = err.to_string();
        assert!(message.contains("\"iphone\""), "{message:?}");
        for name in NAMES {
            assert!(message.contains(name), "{message:?} should list {name}");
        }
        assert_eq!(try_by_id("NEXUS4").unwrap().id, "nexus4");
    }

    #[test]
    fn duplicate_ids_rejected_case_insensitively() {
        let err = Registry::new(vec![crate::nexus4(), crate::nexus4()]);
        assert_eq!(err, Err(DeviceError::DuplicateId("nexus4".to_owned())));
    }

    #[test]
    fn invalid_spec_rejected_at_registry_construction() {
        let mut bad = crate::nexus4();
        bad.clusters[0].opp.clear();
        assert_eq!(Registry::new(vec![bad]), Err(DeviceError::EmptyOppTable));
    }

    #[test]
    fn custom_registry_is_independent_of_builtin() {
        let r = Registry::new(vec![crate::budget_quad()]).unwrap();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.by_id("nexus4").is_none());
        assert!(r.by_id("BUDGET-QUAD").is_some());
        assert_eq!(r.specs()[0].id, "budget-quad");
    }
}
