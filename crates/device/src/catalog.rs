//! The built-in device catalog.
//!
//! Four devices spanning the commercial spectrum the fleet sweeps care
//! about. Numbers are plausible-class values, not measurements of any
//! particular product — except `nexus4`, which is bit-for-bit the
//! seed's calibrated constants (the paper's device).

use crate::spec::{
    BatterySpec, ClusterSpec, CpuPowerSpec, DeviceSpec, DisplaySpec, GpuPowerSpec, OppPoint,
};
use usta_thermal::materials::Material;
use usta_thermal::{Celsius, HandContact, PhoneNode, PhoneThermalParams};

/// Builds a seven-node [`PhoneThermalParams`] from explicit arrays —
/// catalog shorthand for devices that are not the calibrated default.
/// Capacitances in J/K (indexed like [`PhoneNode::ALL`]), conductances
/// in W/K.
fn thermal(
    capacitance: [f64; 7],
    couplings: Vec<(PhoneNode, PhoneNode, f64)>,
    ambient_links: Vec<(PhoneNode, f64)>,
) -> PhoneThermalParams {
    PhoneThermalParams {
        capacitance,
        couplings,
        ambient_links,
        ambient: Celsius(24.0),
        initial: Celsius(28.0),
        hand: HandContact::default(),
    }
}

/// A linear voltage ramp over the given frequency ladder — the catalog
/// shorthand for a cluster's OPP table.
fn ramp(khz: &[u32], volts_lo: f64, volts_span: f64) -> Vec<OppPoint> {
    let last = (khz.len() - 1) as f64;
    khz.iter()
        .enumerate()
        .map(|(i, &khz)| OppPoint {
            khz,
            volts: volts_lo + volts_span * i as f64 / last,
        })
        .collect()
}

/// The paper's device: Google Nexus 4 (Qualcomm APQ8064, quad-core
/// Krait 300, 4.7" IPS, 2100 mAh). One frequency domain, reproducing
/// the seed's Table-1 constants bit-for-bit: the twelve-level OPP table
/// with its linear 0.95–1.25 V ramp, the calibrated power
/// coefficients, and [`PhoneThermalParams::default`] as the thermal
/// network.
pub fn nexus4() -> DeviceSpec {
    const KHZ: [u32; 12] = [
        384_000, 486_000, 594_000, 702_000, 810_000, 918_000, 1_026_000, 1_134_000, 1_242_000,
        1_350_000, 1_458_000, 1_512_000,
    ];
    DeviceSpec {
        id: "nexus4",
        description: "Google Nexus 4 (APQ8064, quad Krait 300) — the paper's device",
        clusters: vec![ClusterSpec {
            name: "cpu",
            cores: 4,
            // The same expression the seed used, so the voltages are
            // bit-identical: a linear ramp over the documented Krait
            // PVS-nominal range.
            opp: ramp(&KHZ, 0.95, 0.30),
            cpu_power: CpuPowerSpec {
                ceff_farads: 3.8e-10,
                leak_coeff_a: 0.056,
                leak_temp_per_k: 0.02,
                idle_uncore_w: 0.12,
            },
        }],
        gpu_power: GpuPowerSpec {
            max_w: 1.6,
            idle_w: 0.05,
        },
        display: DisplaySpec {
            base_w: 0.35,
            full_brightness_w: 0.85,
        },
        battery: BatterySpec {
            capacity_mah: 2100.0,
            nominal_v: 3.8,
            internal_ohm: 0.12,
            max_charge_a: 1.2,
            charge_loss_fraction: 0.28,
        },
        back_cover: Material::Polycarbonate,
        thermal: PhoneThermalParams::default(),
    }
}

/// A big.LITTLE octa-core flagship: glass back, metal frame, and —
/// since the control plane went multi-domain — two genuine frequency
/// domains. The big cluster runs an eleven-level table up to 2.016 GHz
/// on high-performance (power-hungry) cores; the LITTLE cluster runs
/// an eight-level table up to 1.363 GHz on efficiency cores at roughly
/// a fifth of the big cluster's switched capacitance. Peak combined
/// dynamic power ≈4 W is burst-only and thermally unsustainable —
/// exactly the regime a skin-temperature governor is for, now with the
/// extra lever of capping each cluster separately.
pub fn flagship_octa() -> DeviceSpec {
    const BIG_KHZ: [u32; 11] = [
        787_200, 883_200, 979_200, 1_075_200, 1_171_200, 1_267_200, 1_363_200, 1_459_200,
        1_555_200, 1_747_200, 2_016_000,
    ];
    const LITTLE_KHZ: [u32; 8] = [
        300_000, 441_600, 595_200, 729_600, 883_200, 1_036_800, 1_190_400, 1_363_200,
    ];
    use PhoneNode::*;
    DeviceSpec {
        id: "flagship-octa",
        description: "big.LITTLE octa-core flagship, 5.5\" OLED, glass back, two freq domains",
        clusters: vec![
            ClusterSpec {
                name: "big",
                cores: 4,
                opp: ramp(&BIG_KHZ, 0.85, 0.35),
                cpu_power: CpuPowerSpec {
                    ceff_farads: 2.9e-10,
                    leak_coeff_a: 0.065,
                    leak_temp_per_k: 0.025,
                    idle_uncore_w: 0.12,
                },
            },
            ClusterSpec {
                name: "little",
                cores: 4,
                opp: ramp(&LITTLE_KHZ, 0.75, 0.25),
                cpu_power: CpuPowerSpec {
                    ceff_farads: 1.1e-10,
                    leak_coeff_a: 0.030,
                    leak_temp_per_k: 0.020,
                    idle_uncore_w: 0.06,
                },
            },
        ],
        gpu_power: GpuPowerSpec {
            max_w: 3.2,
            idle_w: 0.08,
        },
        display: DisplaySpec {
            base_w: 0.40,
            full_brightness_w: 1.15,
        },
        battery: BatterySpec {
            capacity_mah: 3000.0,
            nominal_v: 3.85,
            internal_ohm: 0.09,
            max_charge_a: 2.0,
            charge_loss_fraction: 0.22,
        },
        back_cover: Material::CoverGlass,
        // Slightly heavier than the Nexus 4 and much better spread: the
        // metal frame couples the package to both covers strongly.
        thermal: thermal(
            [1.6, 9.0, 38.0, 70.0, 13.0, 10.0, 32.0],
            vec![
                (Cpu, Package, 3.5),
                (Package, Board, 1.4),
                (Package, BackUpper, 0.42),
                (Board, Battery, 0.80),
                (Board, BackMid, 0.30),
                (Board, Screen, 0.16),
                (Battery, BackMid, 0.70),
                (Battery, Screen, 0.04),
                (BackUpper, BackMid, 0.16),
            ],
            vec![
                (BackMid, 0.085),
                (BackUpper, 0.065),
                (Screen, 0.150),
                (Board, 0.022),
                (Battery, 0.006),
            ],
        ),
    }
}

/// A 10-inch tablet: hexa-core mid-range SoC (one shared frequency
/// domain) driving a large panel, an aluminium shell, and several
/// times a phone's thermal mass — it heats slowly, sheds heat over a
/// much larger surface, and its skin problem is dominated by the
/// display, not the CPU.
pub fn tablet_10in() -> DeviceSpec {
    const KHZ: [u32; 10] = [
        396_000, 550_000, 696_000, 852_000, 996_000, 1_152_000, 1_310_000, 1_466_000, 1_620_000,
        1_800_000,
    ];
    use PhoneNode::*;
    DeviceSpec {
        id: "tablet-10in",
        description: "10\" tablet, hexa-core mid-range SoC, aluminium shell",
        clusters: vec![ClusterSpec {
            name: "cpu",
            cores: 6,
            opp: ramp(&KHZ, 0.85, 0.30),
            cpu_power: CpuPowerSpec {
                ceff_farads: 3.2e-10,
                leak_coeff_a: 0.050,
                leak_temp_per_k: 0.02,
                idle_uncore_w: 0.20,
            },
        }],
        gpu_power: GpuPowerSpec {
            max_w: 3.5,
            idle_w: 0.10,
        },
        display: DisplaySpec {
            base_w: 1.20,
            full_brightness_w: 2.60,
        },
        battery: BatterySpec {
            capacity_mah: 7000.0,
            nominal_v: 3.8,
            internal_ohm: 0.06,
            max_charge_a: 2.4,
            charge_loss_fraction: 0.20,
        },
        back_cover: Material::Aluminium,
        // Tablet-class thermal mass: the battery and screen dwarf a
        // phone's, and every exterior node sees ~3× the convective
        // area.
        thermal: thermal(
            [1.5, 10.0, 80.0, 160.0, 55.0, 40.0, 120.0],
            vec![
                (Cpu, Package, 3.2),
                (Package, Board, 1.6),
                (Package, BackUpper, 0.50),
                (Board, Battery, 1.00),
                (Board, BackMid, 0.40),
                (Board, Screen, 0.25),
                (Battery, BackMid, 0.80),
                (Battery, Screen, 0.06),
                (BackUpper, BackMid, 0.25),
            ],
            vec![
                (BackMid, 0.220),
                (BackUpper, 0.160),
                (Screen, 0.400),
                (Board, 0.050),
                (Battery, 0.015),
            ],
        ),
    }
}

/// A low-end quad-core handset: a shallow six-level OPP table topping
/// out at 1.1 GHz, a small pack with high internal resistance, and a
/// cheap polycarbonate build that sheds heat slightly worse than the
/// Nexus 4.
pub fn budget_quad() -> DeviceSpec {
    const KHZ: [u32; 6] = [400_000, 533_000, 667_000, 800_000, 933_000, 1_100_000];
    use PhoneNode::*;
    DeviceSpec {
        id: "budget-quad",
        description: "low-end quad-core handset, shallow OPP table, 4.5\" panel",
        clusters: vec![ClusterSpec {
            name: "cpu",
            cores: 4,
            opp: ramp(&KHZ, 0.90, 0.20),
            cpu_power: CpuPowerSpec {
                ceff_farads: 2.4e-10,
                leak_coeff_a: 0.040,
                leak_temp_per_k: 0.018,
                idle_uncore_w: 0.08,
            },
        }],
        gpu_power: GpuPowerSpec {
            max_w: 0.9,
            idle_w: 0.04,
        },
        display: DisplaySpec {
            base_w: 0.30,
            full_brightness_w: 0.70,
        },
        battery: BatterySpec {
            capacity_mah: 1800.0,
            nominal_v: 3.7,
            internal_ohm: 0.18,
            max_charge_a: 1.0,
            charge_loss_fraction: 0.30,
        },
        back_cover: Material::Polycarbonate,
        thermal: thermal(
            [1.0, 6.0, 26.0, 48.0, 9.0, 7.0, 22.0],
            vec![
                (Cpu, Package, 2.6),
                (Package, Board, 1.0),
                (Package, BackUpper, 0.26),
                (Board, Battery, 0.55),
                (Board, BackMid, 0.20),
                (Board, Screen, 0.10),
                (Battery, BackMid, 0.50),
                (Battery, Screen, 0.03),
                (BackUpper, BackMid, 0.09),
            ],
            vec![
                (BackMid, 0.070),
                (BackUpper, 0.050),
                (Screen, 0.120),
                (Board, 0.018),
                (Battery, 0.004),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_device_validates() {
        for spec in [nexus4(), flagship_octa(), tablet_10in(), budget_quad()] {
            assert_eq!(spec.validate(), Ok(()), "{} must validate", spec.id);
        }
    }

    #[test]
    fn nexus4_thermal_is_the_calibrated_default() {
        assert_eq!(nexus4().thermal, PhoneThermalParams::default());
    }

    #[test]
    fn catalog_spans_the_intended_classes() {
        let flagship = flagship_octa();
        let tablet = tablet_10in();
        let budget = budget_quad();
        let phone = nexus4();
        assert_eq!(flagship.cores(), 8);
        assert_eq!(flagship.domains(), 2);
        assert!(flagship.max_khz() > phone.max_khz());
        assert!(tablet.thermal_mass_j_per_k() > 3.0 * phone.thermal_mass_j_per_k());
        assert!(budget.clusters[0].opp.len() < phone.clusters[0].opp.len());
        assert!(budget.max_khz() < phone.max_khz());
        // Every other catalog device is single-domain.
        for single in [&phone, &tablet, &budget] {
            assert_eq!(single.domains(), 1, "{}", single.id);
            assert_eq!(single.clusters[0].name, "cpu");
        }
    }

    #[test]
    fn flagship_clusters_are_big_first_and_asymmetric() {
        let s = flagship_octa();
        assert_eq!(s.clusters[0].name, "big");
        assert_eq!(s.clusters[1].name, "little");
        assert!(s.clusters[0].max_khz() > s.clusters[1].max_khz());
        // Efficiency cores: far less switched capacitance per core.
        assert!(
            s.clusters[1].cpu_power.ceff_farads < s.clusters[0].cpu_power.ceff_farads / 2.0,
            "LITTLE cores must be markedly more efficient"
        );
    }
}
