//! The built-in device catalog.
//!
//! Five devices spanning the commercial spectrum the fleet sweeps care
//! about. Numbers are plausible-class values, not measurements of any
//! particular product — except `nexus4`, which is bit-for-bit the
//! seed's calibrated constants (the paper's device).

use crate::spec::{
    BatterySpec, ClusterSpec, CpuPowerSpec, DeviceSpec, DisplaySpec, GpuDomainSpec, GpuPowerSpec,
    OppPoint,
};
use crate::thermal::{ThermalNodeSpec, ThermalSpec};
use usta_thermal::materials::Material;
use usta_thermal::{Celsius, HandContact};

/// The die node name a cluster gets: the single-domain `cpu` node keeps
/// its historical name, multi-domain clusters get `die_<cluster>`.
/// Non-catalog cluster names are interned (leaked once per distinct
/// name), so repeated spec construction stays allocation-bounded.
fn die_node_name(cluster: &'static str) -> &'static str {
    match cluster {
        "cpu" => "cpu",
        "big" => "die_big",
        "little" => "die_little",
        "prime" => "die_prime",
        other => {
            use std::collections::BTreeMap;
            use std::sync::{Mutex, OnceLock};
            static INTERNED: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> =
                OnceLock::new();
            INTERNED
                .get_or_init(|| Mutex::new(BTreeMap::new()))
                .lock()
                .expect("die-name interner lock")
                .entry(other)
                .or_insert_with(|| Box::leak(format!("die_{other}").into_boxed_str()))
        }
    }
}

/// Builds the phone-shaped [`ThermalSpec`] every catalog device uses:
/// **one die node per cluster** (big-first, `Ceff × cores`-proportional
/// splits of the total die capacitance and die–package conductance),
/// then package, board, battery, the two back-cover thermistor nodes,
/// and the screen. `die` is `(total die capacitance J/K, total
/// die–package conductance W/K)`; `capacitance` lists the six non-die
/// nodes `[package, board, battery, back_mid, back_upper, screen]`.
fn phone_thermal(
    clusters: &[ClusterSpec],
    die: (f64, f64),
    capacitance: [f64; 6],
    couplings: Vec<(&'static str, &'static str, f64)>,
    ambient_links: Vec<(&'static str, f64)>,
) -> ThermalSpec {
    let (die_c, die_g) = die;
    let mut nodes = Vec::with_capacity(clusters.len() + 6);
    let mut die_couplings = Vec::with_capacity(clusters.len());
    let mut die_nodes = Vec::with_capacity(clusters.len());
    if clusters.len() == 1 {
        let name = die_node_name(clusters[0].name);
        nodes.push(ThermalNodeSpec {
            name,
            capacitance: die_c,
        });
        die_couplings.push((name, "package", die_g));
        die_nodes.push(name);
    } else {
        // Die area (and with it heat capacity and package coupling)
        // scales with each cluster's total switched capacitance.
        let total_w: f64 = clusters
            .iter()
            .map(|c| c.cpu_power.ceff_farads * c.cores as f64)
            .sum();
        for cluster in clusters {
            let share = cluster.cpu_power.ceff_farads * cluster.cores as f64 / total_w;
            let name = die_node_name(cluster.name);
            nodes.push(ThermalNodeSpec {
                name,
                capacitance: die_c * share,
            });
            die_couplings.push((name, "package", die_g * share));
            die_nodes.push(name);
        }
    }
    for (name, c) in [
        ("package", capacitance[0]),
        ("board", capacitance[1]),
        ("battery", capacitance[2]),
        ("back_mid", capacitance[3]),
        ("back_upper", capacitance[4]),
        ("screen", capacitance[5]),
    ] {
        nodes.push(ThermalNodeSpec {
            name,
            capacitance: c,
        });
    }
    die_couplings.extend(couplings);
    ThermalSpec {
        nodes,
        couplings: die_couplings,
        ambient_links,
        die_nodes,
        package_node: "package",
        gpu_node: None,
        board_node: "board",
        battery_node: "battery",
        screen_node: "screen",
        skin_node: "back_mid",
        back_nodes: vec!["back_mid", "back_upper"],
        ambient: Celsius(24.0),
        initial: Celsius(28.0),
        hand: HandContact::default(),
    }
}

/// A linear voltage ramp over the given frequency ladder — the catalog
/// shorthand for a cluster's OPP table.
fn ramp(khz: &[u32], volts_lo: f64, volts_span: f64) -> Vec<OppPoint> {
    let last = (khz.len() - 1) as f64;
    khz.iter()
        .enumerate()
        .map(|(i, &khz)| OppPoint {
            khz,
            volts: volts_lo + volts_span * i as f64 / last,
        })
        .collect()
}

/// The paper's device: Google Nexus 4 (Qualcomm APQ8064, quad-core
/// Krait 300, 4.7" IPS, 2100 mAh). One frequency domain, reproducing
/// the seed's Table-1 constants bit-for-bit: the twelve-level OPP table
/// with its linear 0.95–1.25 V ramp, the calibrated power
/// coefficients, and a thermal spec whose topology equals
/// `PhoneThermalParams::default().topology()` exactly.
pub fn nexus4() -> DeviceSpec {
    const KHZ: [u32; 12] = [
        384_000, 486_000, 594_000, 702_000, 810_000, 918_000, 1_026_000, 1_134_000, 1_242_000,
        1_350_000, 1_458_000, 1_512_000,
    ];
    let clusters = vec![ClusterSpec {
        name: "cpu",
        cores: 4,
        // The same expression the seed used, so the voltages are
        // bit-identical: a linear ramp over the documented Krait
        // PVS-nominal range.
        opp: ramp(&KHZ, 0.95, 0.30),
        cpu_power: CpuPowerSpec {
            ceff_farads: 3.8e-10,
            leak_coeff_a: 0.056,
            leak_temp_per_k: 0.02,
            idle_uncore_w: 0.12,
        },
    }];
    // The calibrated seed network, node for node and edge for edge.
    let thermal = phone_thermal(
        &clusters,
        (1.2, 3.0),
        [7.0, 30.0, 55.0, 10.0, 8.0, 26.0],
        vec![
            ("package", "board", 1.1),
            ("package", "back_upper", 0.30),
            ("board", "battery", 0.60),
            ("board", "back_mid", 0.22),
            ("board", "screen", 0.12),
            ("battery", "back_mid", 0.55),
            ("battery", "screen", 0.03),
            ("back_upper", "back_mid", 0.10),
        ],
        vec![
            ("back_mid", 0.075),
            ("back_upper", 0.055),
            ("screen", 0.130),
            ("board", 0.020),
            ("battery", 0.005),
        ],
    );
    DeviceSpec {
        id: "nexus4",
        description: "Google Nexus 4 (APQ8064, quad Krait 300) — the paper's device",
        clusters,
        gpu_power: GpuPowerSpec {
            max_w: 1.6,
            idle_w: 0.05,
        },
        // The paper's device keeps the legacy static GPU and an
        // ungoverned backlight: its trajectories stay golden-bit.
        gpu: None,
        display: DisplaySpec {
            base_w: 0.35,
            full_brightness_w: 0.85,
        },
        brightness_ladder: None,
        battery: BatterySpec {
            capacity_mah: 2100.0,
            nominal_v: 3.8,
            internal_ohm: 0.12,
            max_charge_a: 1.2,
            charge_loss_fraction: 0.28,
        },
        back_cover: Material::Polycarbonate,
        thermal,
    }
}

/// A big.LITTLE octa-core flagship: glass back, metal frame, and —
/// since the control plane went multi-domain — two genuine frequency
/// domains. The big cluster runs an eleven-level table up to 2.016 GHz
/// on high-performance (power-hungry) cores; the LITTLE cluster runs
/// an eight-level table up to 1.363 GHz on efficiency cores at roughly
/// a fifth of the big cluster's switched capacitance. Since the
/// thermal topology went data-driven each cluster heats its **own die
/// node** (`die_big`/`die_little`, Ceff-proportional split), so USTA
/// can see which cluster is actually warming the skin.
pub fn flagship_octa() -> DeviceSpec {
    const BIG_KHZ: [u32; 11] = [
        787_200, 883_200, 979_200, 1_075_200, 1_171_200, 1_267_200, 1_363_200, 1_459_200,
        1_555_200, 1_747_200, 2_016_000,
    ];
    const LITTLE_KHZ: [u32; 8] = [
        300_000, 441_600, 595_200, 729_600, 883_200, 1_036_800, 1_190_400, 1_363_200,
    ];
    let clusters = vec![
        ClusterSpec {
            name: "big",
            cores: 4,
            opp: ramp(&BIG_KHZ, 0.85, 0.35),
            cpu_power: CpuPowerSpec {
                ceff_farads: 2.9e-10,
                leak_coeff_a: 0.065,
                leak_temp_per_k: 0.025,
                idle_uncore_w: 0.12,
            },
        },
        ClusterSpec {
            name: "little",
            cores: 4,
            opp: ramp(&LITTLE_KHZ, 0.75, 0.25),
            cpu_power: CpuPowerSpec {
                ceff_farads: 1.1e-10,
                leak_coeff_a: 0.030,
                leak_temp_per_k: 0.020,
                idle_uncore_w: 0.06,
            },
        },
    ];
    // Slightly heavier than the Nexus 4 and much better spread: the
    // metal frame couples the package to both covers strongly.
    let mut thermal = phone_thermal(
        &clusters,
        (1.6, 3.5),
        [9.0, 38.0, 70.0, 13.0, 10.0, 32.0],
        vec![
            ("package", "board", 1.4),
            ("package", "back_upper", 0.42),
            ("board", "battery", 0.80),
            ("board", "back_mid", 0.30),
            ("board", "screen", 0.16),
            ("battery", "back_mid", 0.70),
            ("battery", "screen", 0.04),
            ("back_upper", "back_mid", 0.16),
        ],
        vec![
            ("back_mid", 0.085),
            ("back_upper", 0.065),
            ("screen", 0.150),
            ("board", 0.022),
            ("battery", 0.006),
        ],
    );
    // The governed GPU gets its own die node next to the CPU dies, so
    // GPU-heavy workloads heat a distinct hotspot.
    thermal.nodes.push(ThermalNodeSpec {
        name: "gpu",
        capacitance: 0.8,
    });
    thermal.couplings.push(("gpu", "package", 2.0));
    thermal.gpu_node = Some("gpu");
    // An Adreno-class ladder whose top-level power matches the legacy
    // static model's 3.2 W full-load figure.
    const GPU_KHZ: [u32; 6] = [257_000, 342_000, 414_000, 510_000, 596_000, 710_000];
    DeviceSpec {
        id: "flagship-octa",
        description: "big.LITTLE octa-core flagship, 5.5\" OLED, glass back, two freq domains",
        clusters,
        gpu_power: GpuPowerSpec {
            max_w: 3.2,
            idle_w: 0.08,
        },
        gpu: Some(GpuDomainSpec {
            opp: ramp(&GPU_KHZ, 0.70, 0.30),
            ceff_farads: 4.4e-9,
            idle_w: 0.08,
        }),
        display: DisplaySpec {
            base_w: 0.40,
            full_brightness_w: 1.15,
        },
        brightness_ladder: Some(&[100, 250, 400, 550, 700, 850, 1000]),
        battery: BatterySpec {
            capacity_mah: 3000.0,
            nominal_v: 3.85,
            internal_ohm: 0.09,
            max_charge_a: 2.0,
            charge_loss_fraction: 0.22,
        },
        back_cover: Material::CoverGlass,
        thermal,
    }
}

/// A three-domain flagship: one prime core clocked to 2.84 GHz, three
/// big cores, and four LITTLE efficiency cores — the topology of a
/// Snapdragon-855-class part, and the catalog's exercise of the
/// control plane's (and now the thermal topology's) three-domain
/// support. Each cluster heats its own die node
/// (`die_prime`/`die_big`/`die_little`), so the hotspot under a
/// single-threaded burst is visibly the prime core's.
pub fn prime_flagship() -> DeviceSpec {
    const PRIME_KHZ: [u32; 12] = [
        940_800, 1_056_000, 1_171_200, 1_286_400, 1_401_600, 1_516_800, 1_632_000, 1_747_200,
        1_862_400, 2_131_200, 2_419_200, 2_841_600,
    ];
    const BIG_KHZ: [u32; 10] = [
        710_400, 825_600, 940_800, 1_056_000, 1_171_200, 1_286_400, 1_401_600, 1_555_200,
        1_708_800, 2_016_000,
    ];
    const LITTLE_KHZ: [u32; 8] = [
        300_000, 441_600, 576_000, 710_400, 825_600, 940_800, 1_171_200, 1_785_600,
    ];
    let clusters = vec![
        ClusterSpec {
            name: "prime",
            cores: 1,
            opp: ramp(&PRIME_KHZ, 0.80, 0.40),
            cpu_power: CpuPowerSpec {
                ceff_farads: 3.6e-10,
                leak_coeff_a: 0.080,
                leak_temp_per_k: 0.028,
                idle_uncore_w: 0.05,
            },
        },
        ClusterSpec {
            name: "big",
            cores: 3,
            opp: ramp(&BIG_KHZ, 0.78, 0.32),
            cpu_power: CpuPowerSpec {
                ceff_farads: 2.7e-10,
                leak_coeff_a: 0.060,
                leak_temp_per_k: 0.024,
                idle_uncore_w: 0.10,
            },
        },
        ClusterSpec {
            name: "little",
            cores: 4,
            opp: ramp(&LITTLE_KHZ, 0.70, 0.24),
            cpu_power: CpuPowerSpec {
                ceff_farads: 1.0e-10,
                leak_coeff_a: 0.028,
                leak_temp_per_k: 0.020,
                idle_uncore_w: 0.06,
            },
        },
    ];
    // A vapour-chamber-class spreader: strong package couplings, a
    // touch more thermal mass than the octa flagship.
    let mut thermal = phone_thermal(
        &clusters,
        (1.9, 3.8),
        [10.0, 40.0, 85.0, 14.0, 11.0, 34.0],
        vec![
            ("package", "board", 1.5),
            ("package", "back_upper", 0.46),
            ("board", "battery", 0.85),
            ("board", "back_mid", 0.32),
            ("board", "screen", 0.17),
            ("battery", "back_mid", 0.72),
            ("battery", "screen", 0.04),
            ("back_upper", "back_mid", 0.18),
        ],
        vec![
            ("back_mid", 0.090),
            ("back_upper", 0.068),
            ("screen", 0.160),
            ("board", 0.024),
            ("battery", 0.006),
        ],
    );
    thermal.nodes.push(ThermalNodeSpec {
        name: "gpu",
        capacitance: 1.0,
    });
    thermal.couplings.push(("gpu", "package", 2.2));
    thermal.gpu_node = Some("gpu");
    // A bigger Adreno: top-level power matches the legacy 4.0 W model.
    const GPU_KHZ: [u32; 7] = [
        257_000, 392_000, 490_000, 587_000, 675_000, 790_000, 905_000,
    ];
    DeviceSpec {
        id: "prime-flagship",
        description: "three-domain flagship (1 prime + 3 big + 4 LITTLE), 6.1\" OLED, glass back",
        clusters,
        gpu_power: GpuPowerSpec {
            max_w: 4.0,
            idle_w: 0.10,
        },
        gpu: Some(GpuDomainSpec {
            opp: ramp(&GPU_KHZ, 0.68, 0.37),
            ceff_farads: 3.9e-9,
            idle_w: 0.10,
        }),
        display: DisplaySpec {
            base_w: 0.45,
            full_brightness_w: 1.30,
        },
        brightness_ladder: Some(&[80, 200, 350, 500, 650, 800, 900, 1000]),
        battery: BatterySpec {
            capacity_mah: 4000.0,
            nominal_v: 3.85,
            internal_ohm: 0.08,
            max_charge_a: 3.0,
            charge_loss_fraction: 0.20,
        },
        back_cover: Material::CoverGlass,
        thermal,
    }
}

/// A 10-inch tablet: hexa-core mid-range SoC (one shared frequency
/// domain) driving a large panel, an aluminium shell, and several
/// times a phone's thermal mass — it heats slowly, sheds heat over a
/// much larger surface, and its skin problem is dominated by the
/// display, not the CPU.
pub fn tablet_10in() -> DeviceSpec {
    const KHZ: [u32; 10] = [
        396_000, 550_000, 696_000, 852_000, 996_000, 1_152_000, 1_310_000, 1_466_000, 1_620_000,
        1_800_000,
    ];
    let clusters = vec![ClusterSpec {
        name: "cpu",
        cores: 6,
        opp: ramp(&KHZ, 0.85, 0.30),
        cpu_power: CpuPowerSpec {
            ceff_farads: 3.2e-10,
            leak_coeff_a: 0.050,
            leak_temp_per_k: 0.02,
            idle_uncore_w: 0.20,
        },
    }];
    // Tablet-class thermal mass: the battery and screen dwarf a
    // phone's, and every exterior node sees ~3× the convective
    // area.
    let thermal = phone_thermal(
        &clusters,
        (1.5, 3.2),
        [10.0, 80.0, 160.0, 55.0, 40.0, 120.0],
        vec![
            ("package", "board", 1.6),
            ("package", "back_upper", 0.50),
            ("board", "battery", 1.00),
            ("board", "back_mid", 0.40),
            ("board", "screen", 0.25),
            ("battery", "back_mid", 0.80),
            ("battery", "screen", 0.06),
            ("back_upper", "back_mid", 0.25),
        ],
        vec![
            ("back_mid", 0.220),
            ("back_upper", 0.160),
            ("screen", 0.400),
            ("board", 0.050),
            ("battery", 0.015),
        ],
    );
    DeviceSpec {
        id: "tablet-10in",
        description: "10\" tablet, hexa-core mid-range SoC, aluminium shell",
        clusters,
        gpu_power: GpuPowerSpec {
            max_w: 3.5,
            idle_w: 0.10,
        },
        gpu: None,
        display: DisplaySpec {
            base_w: 1.20,
            full_brightness_w: 2.60,
        },
        brightness_ladder: None,
        battery: BatterySpec {
            capacity_mah: 7000.0,
            nominal_v: 3.8,
            internal_ohm: 0.06,
            max_charge_a: 2.4,
            charge_loss_fraction: 0.20,
        },
        back_cover: Material::Aluminium,
        thermal,
    }
}

/// A low-end quad-core handset: a shallow six-level OPP table topping
/// out at 1.1 GHz, a small pack with high internal resistance, and a
/// cheap polycarbonate build that sheds heat slightly worse than the
/// Nexus 4.
pub fn budget_quad() -> DeviceSpec {
    const KHZ: [u32; 6] = [400_000, 533_000, 667_000, 800_000, 933_000, 1_100_000];
    let clusters = vec![ClusterSpec {
        name: "cpu",
        cores: 4,
        opp: ramp(&KHZ, 0.90, 0.20),
        cpu_power: CpuPowerSpec {
            ceff_farads: 2.4e-10,
            leak_coeff_a: 0.040,
            leak_temp_per_k: 0.018,
            idle_uncore_w: 0.08,
        },
    }];
    let thermal = phone_thermal(
        &clusters,
        (1.0, 2.6),
        [6.0, 26.0, 48.0, 9.0, 7.0, 22.0],
        vec![
            ("package", "board", 1.0),
            ("package", "back_upper", 0.26),
            ("board", "battery", 0.55),
            ("board", "back_mid", 0.20),
            ("board", "screen", 0.10),
            ("battery", "back_mid", 0.50),
            ("battery", "screen", 0.03),
            ("back_upper", "back_mid", 0.09),
        ],
        vec![
            ("back_mid", 0.070),
            ("back_upper", 0.050),
            ("screen", 0.120),
            ("board", 0.018),
            ("battery", 0.004),
        ],
    );
    DeviceSpec {
        id: "budget-quad",
        description: "low-end quad-core handset, shallow OPP table, 4.5\" panel",
        clusters,
        gpu_power: GpuPowerSpec {
            max_w: 0.9,
            idle_w: 0.04,
        },
        gpu: None,
        display: DisplaySpec {
            base_w: 0.30,
            full_brightness_w: 0.70,
        },
        brightness_ladder: None,
        battery: BatterySpec {
            capacity_mah: 1800.0,
            nominal_v: 3.7,
            internal_ohm: 0.18,
            max_charge_a: 1.0,
            charge_loss_fraction: 0.30,
        },
        back_cover: Material::Polycarbonate,
        thermal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usta_thermal::PhoneThermalParams;

    #[test]
    fn every_catalog_device_validates() {
        for spec in [
            nexus4(),
            flagship_octa(),
            prime_flagship(),
            tablet_10in(),
            budget_quad(),
        ] {
            assert_eq!(spec.validate(), Ok(()), "{} must validate", spec.id);
        }
    }

    #[test]
    fn nexus4_thermal_is_the_calibrated_default() {
        assert_eq!(
            nexus4().thermal.topology(),
            PhoneThermalParams::default().topology()
        );
    }

    #[test]
    fn catalog_spans_the_intended_classes() {
        let flagship = flagship_octa();
        let tablet = tablet_10in();
        let budget = budget_quad();
        let phone = nexus4();
        assert_eq!(flagship.cores(), 8);
        assert_eq!(flagship.domains(), 2);
        assert!(flagship.max_khz() > phone.max_khz());
        assert!(tablet.thermal_mass_j_per_k() > 3.0 * phone.thermal_mass_j_per_k());
        assert!(budget.clusters[0].opp.len() < phone.clusters[0].opp.len());
        assert!(budget.max_khz() < phone.max_khz());
        // Every single-domain catalog device keeps the historical
        // single `cpu` die node.
        for single in [&phone, &tablet, &budget] {
            assert_eq!(single.domains(), 1, "{}", single.id);
            assert_eq!(single.clusters[0].name, "cpu");
            assert_eq!(single.thermal.die_nodes, vec!["cpu"], "{}", single.id);
            assert_eq!(single.thermal.nodes.len(), 7, "{}", single.id);
        }
    }

    #[test]
    fn flagship_clusters_are_big_first_and_asymmetric() {
        let s = flagship_octa();
        assert_eq!(s.clusters[0].name, "big");
        assert_eq!(s.clusters[1].name, "little");
        assert!(s.clusters[0].max_khz() > s.clusters[1].max_khz());
        // Efficiency cores: far less switched capacitance per core.
        assert!(
            s.clusters[1].cpu_power.ceff_farads < s.clusters[0].cpu_power.ceff_farads / 2.0,
            "LITTLE cores must be markedly more efficient"
        );
    }

    #[test]
    fn multi_cluster_devices_get_one_die_node_per_cluster() {
        let s = flagship_octa();
        assert_eq!(s.thermal.die_nodes, vec!["die_big", "die_little"]);
        assert_eq!(s.thermal.nodes.len(), 9);
        let p = prime_flagship();
        assert_eq!(
            p.thermal.die_nodes,
            vec!["die_prime", "die_big", "die_little"]
        );
        assert_eq!(p.thermal.nodes.len(), 10);
    }

    #[test]
    fn governed_gpus_declare_a_domain_a_ladder_and_their_own_node() {
        for spec in [flagship_octa(), prime_flagship()] {
            let gpu = spec.gpu.as_ref().unwrap_or_else(|| panic!("{}", spec.id));
            // The governed domain's full-load power matches the legacy
            // static model it replaces to within a few percent, so
            // budgets stay comparable across the catalog.
            let legacy = spec.gpu_power.max_w;
            assert!(
                (gpu.full_load_w() - legacy).abs() / legacy < 0.05,
                "{}: governed {} W vs legacy {} W",
                spec.id,
                gpu.full_load_w(),
                legacy
            );
            assert_eq!(spec.thermal.gpu_node, Some("gpu"), "{}", spec.id);
            assert!(spec.thermal.node_index("gpu").is_some(), "{}", spec.id);
            let ladder = spec.brightness_ladder.expect("ladder");
            assert_eq!(*ladder.last().unwrap(), 1000, "{}", spec.id);
        }
        // Legacy devices declare neither.
        for spec in [nexus4(), tablet_10in(), budget_quad()] {
            assert!(spec.gpu.is_none(), "{}", spec.id);
            assert!(spec.brightness_ladder.is_none(), "{}", spec.id);
            assert_eq!(spec.thermal.gpu_node, None, "{}", spec.id);
        }
    }

    #[test]
    fn die_splits_are_ceff_proportional() {
        let s = flagship_octa();
        let big = s.thermal.nodes[s.thermal.node_index("die_big").unwrap()].capacitance;
        let little = s.thermal.nodes[s.thermal.node_index("die_little").unwrap()].capacitance;
        // Total die mass is preserved…
        assert!((big + little - 1.6).abs() < 1e-12);
        // …and split 2.9:1.1 by per-core Ceff at equal core counts.
        assert!((big / little - 2.9 / 1.1).abs() < 1e-9);
        // Same split on the die–package conductances.
        let g = |name: &str| {
            s.thermal
                .couplings
                .iter()
                .find(|&&(a, b, _)| a == name && b == "package")
                .map(|&(_, _, g)| g)
                .unwrap()
        };
        assert!((g("die_big") + g("die_little") - 3.5).abs() < 1e-12);
        assert!((g("die_big") / g("die_little") - 2.9 / 1.1).abs() < 1e-9);
    }

    #[test]
    fn prime_flagship_is_three_domain_and_big_first() {
        let s = prime_flagship();
        assert_eq!(s.domains(), 3);
        assert_eq!(s.cores(), 8);
        assert_eq!(s.topology(), "1+3+4");
        assert_eq!(s.clusters[0].name, "prime");
        assert!(s.clusters[0].max_khz() > s.clusters[1].max_khz());
        assert!(s.clusters[1].max_khz() > s.clusters[2].max_khz());
        // The prime core is a single hot core: its die node is smaller
        // than big's (1 core vs 3) but hotter per core.
        let die = |name: &str| s.thermal.nodes[s.thermal.node_index(name).unwrap()].capacitance;
        assert!(die("die_prime") < die("die_big"));
        assert!(die("die_little") < die("die_big"));
    }
}
