//! The device spec: everything needed to instantiate one device model.
//!
//! A [`DeviceSpec`] is plain data — no behaviour beyond validation and
//! a few derived summaries. The CPU side is a list of [`ClusterSpec`]s,
//! one per frequency domain (cpufreq policy): single-policy parts like
//! the paper's Nexus 4 declare one cluster, big.LITTLE parts declare
//! two, in **big-first order** (the spill scheduler places threads on
//! the fastest cluster first). `usta-soc` turns each cluster into live
//! models (`usta_soc::spec`), and `usta-sim` builds whole multi-domain
//! devices from a spec; the thermal side is a declarative
//! [`ThermalSpec`] with **one die node per cluster**, lowered into a
//! `usta_thermal::ThermalTopology` at device construction.

use crate::error::DeviceError;
use crate::thermal::ThermalSpec;
use usta_thermal::materials::Material;

/// The most CPU clusters a device may declare. Three covers every
/// shipping phone topology (LITTLE + big + prime); four leaves
/// headroom.
pub const MAX_CPU_CLUSTERS: usize = 4;

/// The most frequency domains a device may expose to the control
/// plane: up to [`MAX_CPU_CLUSTERS`] CPU clusters plus one GPU domain
/// plus one display (brightness) domain. `usta_soc::MAX_FREQ_DOMAINS`
/// re-exports this so the whole control plane shares one bound.
pub const MAX_FREQ_DOMAINS: usize = MAX_CPU_CLUSTERS + 2;

/// One CPU operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OppPoint {
    /// Core clock, kHz (cpufreq convention; 1 512 000 kHz = 1512 MHz).
    pub khz: u32,
    /// Supply voltage at this point, volts.
    pub volts: f64,
}

impl OppPoint {
    /// Frequency in MHz.
    pub fn mhz(&self) -> f64 {
        self.khz as f64 / 1e3
    }
}

/// CPU power coefficients of one cluster (per core, one shared
/// voltage/frequency domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerSpec {
    /// Effective switched capacitance per core, farads.
    pub ceff_farads: f64,
    /// Leakage current coefficient at 25 °C, amperes.
    pub leak_coeff_a: f64,
    /// Fractional leakage growth per kelvin above 25 °C.
    pub leak_temp_per_k: f64,
    /// Constant uncore/interconnect power while the cluster is online,
    /// watts.
    pub idle_uncore_w: f64,
}

/// One frequency domain: a set of cores sharing a clock, its OPP table,
/// and its power coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name, lower-case `[a-z0-9-]` (`"big"`, `"little"`, or
    /// `"cpu"` on single-domain parts) — used for trace columns and
    /// fleet report rows.
    pub name: &'static str,
    /// Number of cores sharing this cluster's clock.
    pub cores: usize,
    /// The cluster's OPP table, lowest frequency first. Frequencies in
    /// kHz, voltages in volts; frequency must rise strictly, voltage
    /// monotonically.
    pub opp: Vec<OppPoint>,
    /// The cluster's power coefficients (watts-producing).
    pub cpu_power: CpuPowerSpec,
}

impl ClusterSpec {
    /// Full-utilization dynamic power of one core at OPP `index`, watts
    /// (`C_eff · V² · f`). This is the quantity required to rise
    /// strictly with the level index.
    pub fn opp_dynamic_power_w(&self, index: usize) -> f64 {
        let p = self.opp[index];
        self.cpu_power.ceff_farads * p.volts * p.volts * (p.khz as f64 * 1e3)
    }

    /// Full-load dynamic power of the whole cluster at its top OPP,
    /// watts — the weight USTA uses to split a thermal budget across
    /// domains.
    pub fn full_load_w(&self) -> f64 {
        if self.opp.is_empty() {
            return 0.0;
        }
        self.opp_dynamic_power_w(self.opp.len() - 1) * self.cores as f64
    }

    /// Lowest OPP frequency, kHz.
    pub fn min_khz(&self) -> u32 {
        self.opp.first().map_or(0, |p| p.khz)
    }

    /// Highest OPP frequency, kHz.
    pub fn max_khz(&self) -> u32 {
        self.opp.last().map_or(0, |p| p.khz)
    }
}

/// GPU power model: load-proportional with an idle floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPowerSpec {
    /// Full-load power, watts.
    pub max_w: f64,
    /// Idle power, watts.
    pub idle_w: f64,
}

/// A GPU frequency domain: an OPP table and power coefficients, so the
/// GPU participates in DVFS like a CPU cluster instead of being a
/// static load-proportional model.
///
/// Devices that declare one (via [`DeviceSpec::gpu`]) expose the GPU
/// as a first-class frequency domain to the governors and the power
/// arbiter; devices that don't keep the legacy [`GpuPowerSpec`] path
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDomainSpec {
    /// The GPU's OPP table, lowest frequency first — same invariants
    /// as a cluster's ([`validate`](DeviceSpec::validate)).
    pub opp: Vec<OppPoint>,
    /// Effective switched capacitance of the whole GPU, farads.
    pub ceff_farads: f64,
    /// Power while the GPU is online but idle, watts.
    pub idle_w: f64,
}

impl GpuDomainSpec {
    /// Full-utilization dynamic power at OPP `index`, watts
    /// (`C_eff · V² · f`).
    pub fn opp_dynamic_power_w(&self, index: usize) -> f64 {
        let p = self.opp[index];
        self.ceff_farads * p.volts * p.volts * (p.khz as f64 * 1e3)
    }

    /// Full-load power at the top OPP, watts — the GPU's weight in the
    /// arbiter's budget split.
    pub fn full_load_w(&self) -> f64 {
        if self.opp.is_empty() {
            return 0.0;
        }
        self.idle_w + self.opp_dynamic_power_w(self.opp.len() - 1)
    }

    /// Highest OPP frequency, kHz.
    pub fn max_khz(&self) -> u32 {
        self.opp.last().map_or(0, |p| p.khz)
    }
}

/// Display panel power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplaySpec {
    /// Panel + driver power at zero backlight, watts.
    pub base_w: f64,
    /// Additional power at full brightness, watts.
    pub full_brightness_w: f64,
}

/// Battery pack description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatterySpec {
    /// Pack capacity, mAh.
    pub capacity_mah: f64,
    /// Nominal pack voltage, volts.
    pub nominal_v: f64,
    /// Internal resistance, ohms.
    pub internal_ohm: f64,
    /// Maximum charge current, amperes.
    pub max_charge_a: f64,
    /// Fraction of charging power lost as heat in the pack/PMIC, 0–1.
    pub charge_loss_fraction: f64,
}

/// A complete device description.
///
/// Field units are stated per field; the thermal network uses J/K for
/// node capacitances and W/K for conductances (see [`ThermalSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Stable registry/CLI id, lower-case `[a-z0-9-]` (e.g. `"nexus4"`).
    pub id: &'static str,
    /// Human-readable description for reports and `--help` text.
    pub description: &'static str,
    /// The frequency domains, **big-first** (non-increasing top
    /// frequency): the spill scheduler fills earlier clusters' cores
    /// before later ones. At most [`MAX_CPU_CLUSTERS`] entries.
    pub clusters: Vec<ClusterSpec>,
    /// GPU power model, watts — the legacy static path, used whenever
    /// [`DeviceSpec::gpu`] is `None`.
    pub gpu_power: GpuPowerSpec,
    /// The GPU as a real frequency domain (OPP table + power
    /// coefficients). `None` keeps the legacy [`GpuPowerSpec`] path
    /// bit-for-bit; `Some` makes the GPU a governed domain.
    pub gpu: Option<GpuDomainSpec>,
    /// Display power model, watts.
    pub display: DisplaySpec,
    /// Discrete backlight ladder, in brightness permille (strictly
    /// increasing, each in 1..=1000). `Some` exposes the display as a
    /// brightness frequency domain the arbiter may dim; `None` keeps
    /// the workload's requested brightness untouched.
    pub brightness_ladder: Option<&'static [u32]>,
    /// Battery pack (mAh, V, Ω, A).
    pub battery: BatterySpec,
    /// Back-cover material — what the user's palm actually touches.
    /// Informational: the material's thermal contribution is already
    /// folded into `thermal` (the back-cover node capacitances and
    /// ambient conductances); changing this field alone does not
    /// change simulation results.
    pub back_cover: Material,
    /// The declarative thermal RC network: named nodes (heat
    /// capacities in J/K), coupling and ambient conductances in W/K,
    /// and role designations — one die node per cluster, big-first.
    pub thermal: ThermalSpec,
}

impl DeviceSpec {
    /// Number of frequency domains.
    pub fn domains(&self) -> usize {
        self.clusters.len()
    }

    /// Total core count across every cluster.
    pub fn cores(&self) -> usize {
        self.clusters.iter().map(|c| c.cores).sum()
    }

    /// Lowest OPP frequency of any cluster, kHz.
    pub fn min_khz(&self) -> u32 {
        self.clusters
            .iter()
            .map(ClusterSpec::min_khz)
            .min()
            .unwrap_or(0)
    }

    /// Highest OPP frequency of any cluster, kHz.
    pub fn max_khz(&self) -> u32 {
        self.clusters
            .iter()
            .map(ClusterSpec::max_khz)
            .max()
            .unwrap_or(0)
    }

    /// The domain topology as a compact string (`"4"`, `"4+4"`) — the
    /// catalog table's topology column.
    pub fn topology(&self) -> String {
        self.clusters
            .iter()
            .map(|c| c.cores.to_string())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Total heat capacity of the thermal network, J/K — the "thermal
    /// mass" column of the catalog table.
    pub fn thermal_mass_j_per_k(&self) -> f64 {
        self.thermal.total_capacitance()
    }

    /// Validates the spec.
    ///
    /// Checks, in order: the id alphabet, the cluster list (1 to
    /// [`MAX_CPU_CLUSTERS`] clusters, valid unique names, big-first
    /// ordering, per-cluster core counts and OPP monotonicity —
    /// frequency strictly increasing, voltage non-decreasing, dynamic
    /// power strictly increasing), power-model coefficient ranges, and
    /// the thermal spec (see [`ThermalSpec::validate`]: node names,
    /// positive capacitances and conductances, one die node per
    /// cluster, resolvable designations, connected graph).
    ///
    /// # Errors
    ///
    /// Returns the first [`DeviceError`] found.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.id.is_empty() || !valid_token(self.id) {
            return Err(DeviceError::InvalidId(self.id.to_owned()));
        }
        self.validate_clusters()?;
        self.validate_power_models()?;
        self.thermal.validate(self.clusters.len())
    }

    fn validate_clusters(&self) -> Result<(), DeviceError> {
        if self.clusters.is_empty() {
            return Err(DeviceError::NoClusters);
        }
        if self.clusters.len() > MAX_CPU_CLUSTERS {
            return Err(DeviceError::TooManyClusters {
                count: self.clusters.len(),
            });
        }
        for (i, cluster) in self.clusters.iter().enumerate() {
            if cluster.name.is_empty() || !valid_token(cluster.name) {
                return Err(DeviceError::InvalidClusterName(cluster.name.to_owned()));
            }
            if self.clusters[..i].iter().any(|c| c.name == cluster.name) {
                return Err(DeviceError::DuplicateClusterName(cluster.name.to_owned()));
            }
            if i > 0 && self.clusters[i - 1].max_khz() < cluster.max_khz() {
                return Err(DeviceError::ClustersNotBigFirst { index: i });
            }
            if cluster.cores == 0 {
                return Err(DeviceError::InvalidParameter {
                    name: "cluster.cores",
                    value: 0.0,
                });
            }
            validate_cluster_opp(cluster)?;
            validate_cluster_power(cluster)?;
        }
        Ok(())
    }

    fn validate_power_models(&self) -> Result<(), DeviceError> {
        pos("gpu_power.max_w", self.gpu_power.max_w)?;
        nonneg("gpu_power.idle_w", self.gpu_power.idle_w)?;
        if self.gpu_power.idle_w > self.gpu_power.max_w {
            return Err(DeviceError::InvalidParameter {
                name: "gpu_power.idle_w",
                value: self.gpu_power.idle_w,
            });
        }
        nonneg("display.base_w", self.display.base_w)?;
        nonneg("display.full_brightness_w", self.display.full_brightness_w)?;
        pos("battery.capacity_mah", self.battery.capacity_mah)?;
        pos("battery.nominal_v", self.battery.nominal_v)?;
        nonneg("battery.internal_ohm", self.battery.internal_ohm)?;
        pos("battery.max_charge_a", self.battery.max_charge_a)?;
        if !(0.0..=1.0).contains(&self.battery.charge_loss_fraction) {
            return Err(DeviceError::InvalidParameter {
                name: "battery.charge_loss_fraction",
                value: self.battery.charge_loss_fraction,
            });
        }
        if let Some(gpu) = &self.gpu {
            nonneg("gpu.idle_w", gpu.idle_w)?;
            pos("gpu.ceff_farads", gpu.ceff_farads)?;
            validate_opp_curve(&gpu.opp, |i| gpu.opp_dynamic_power_w(i))?;
        }
        if let Some(ladder) = self.brightness_ladder {
            if ladder.is_empty() {
                return Err(DeviceError::InvalidParameter {
                    name: "brightness_ladder",
                    value: 0.0,
                });
            }
            for (i, &permille) in ladder.iter().enumerate() {
                if permille == 0 || permille > 1000 {
                    return Err(DeviceError::InvalidParameter {
                        name: "brightness_ladder",
                        value: permille as f64,
                    });
                }
                if i > 0 && ladder[i - 1] >= permille {
                    return Err(DeviceError::NonMonotoneOppFrequency { index: i });
                }
            }
        }
        Ok(())
    }
}

fn valid_token(token: &str) -> bool {
    !token.is_empty()
        && token
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

fn nonneg(name: &'static str, v: f64) -> Result<(), DeviceError> {
    if v.is_finite() && v >= 0.0 {
        Ok(())
    } else {
        Err(DeviceError::InvalidParameter { name, value: v })
    }
}

fn pos(name: &'static str, v: f64) -> Result<(), DeviceError> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(DeviceError::InvalidParameter { name, value: v })
    }
}

fn validate_cluster_opp(cluster: &ClusterSpec) -> Result<(), DeviceError> {
    validate_opp_curve(&cluster.opp, |i| cluster.opp_dynamic_power_w(i))
}

/// Shared OPP-table invariants for any frequency domain (CPU cluster
/// or GPU): frequency strictly increasing, voltage non-decreasing,
/// dynamic power strictly increasing.
fn validate_opp_curve(
    opp: &[OppPoint],
    dyn_power_w: impl Fn(usize) -> f64,
) -> Result<(), DeviceError> {
    if opp.is_empty() {
        return Err(DeviceError::EmptyOppTable);
    }
    for (i, p) in opp.iter().enumerate() {
        if p.khz == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "opp.khz",
                value: 0.0,
            });
        }
        if !p.volts.is_finite() || p.volts <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "opp.volts",
                value: p.volts,
            });
        }
        if i > 0 {
            if opp[i - 1].khz >= p.khz {
                return Err(DeviceError::NonMonotoneOppFrequency { index: i });
            }
            if opp[i - 1].volts > p.volts {
                return Err(DeviceError::NonMonotoneOppPower { index: i });
            }
            if dyn_power_w(i - 1) >= dyn_power_w(i) {
                return Err(DeviceError::NonMonotoneOppPower { index: i });
            }
        }
    }
    Ok(())
}

fn validate_cluster_power(cluster: &ClusterSpec) -> Result<(), DeviceError> {
    pos("cpu_power.ceff_farads", cluster.cpu_power.ceff_farads)?;
    nonneg("cpu_power.leak_coeff_a", cluster.cpu_power.leak_coeff_a)?;
    nonneg(
        "cpu_power.leak_temp_per_k",
        cluster.cpu_power.leak_temp_per_k,
    )?;
    nonneg("cpu_power.idle_uncore_w", cluster.cpu_power.idle_uncore_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{flagship_octa, nexus4};

    #[test]
    fn nexus4_spec_validates() {
        assert_eq!(nexus4().validate(), Ok(()));
    }

    #[test]
    fn bad_ids_are_rejected() {
        for bad in ["", "Nexus4", "nexus 4", "nexus_4", "nexus/4"] {
            let mut s = nexus4();
            s.id = Box::leak(bad.to_owned().into_boxed_str());
            assert!(
                matches!(s.validate(), Err(DeviceError::InvalidId(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn zero_cores_rejected() {
        let mut s = nexus4();
        s.clusters[0].cores = 0;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidParameter {
                name: "cluster.cores",
                ..
            })
        ));
    }

    #[test]
    fn cluster_list_shape_is_validated() {
        let mut s = nexus4();
        s.clusters.clear();
        assert_eq!(s.validate(), Err(DeviceError::NoClusters));

        let mut s = nexus4();
        let cluster = s.clusters[0].clone();
        for name in ["a", "b", "c", "d"] {
            let mut extra = cluster.clone();
            extra.name = name;
            s.clusters.push(extra);
        }
        assert_eq!(s.validate(), Err(DeviceError::TooManyClusters { count: 5 }));
    }

    #[test]
    fn cluster_names_are_validated_and_unique() {
        let mut s = nexus4();
        s.clusters[0].name = "Big";
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidClusterName(_))
        ));

        let mut s = flagship_octa();
        s.clusters[1].name = s.clusters[0].name;
        // Equalise the top frequency so only the duplicate name trips.
        assert!(matches!(
            s.validate(),
            Err(DeviceError::DuplicateClusterName(_))
        ));
    }

    #[test]
    fn little_before_big_is_rejected() {
        let mut s = flagship_octa();
        s.clusters.reverse();
        assert!(matches!(
            s.validate(),
            Err(DeviceError::ClustersNotBigFirst { index: 1 })
        ));
    }

    #[test]
    fn empty_and_unsorted_opp_rejected() {
        let mut s = nexus4();
        s.clusters[0].opp.clear();
        assert_eq!(s.validate(), Err(DeviceError::EmptyOppTable));

        let mut s = nexus4();
        s.clusters[0].opp.swap(0, 1);
        assert!(matches!(
            s.validate(),
            Err(DeviceError::NonMonotoneOppFrequency { .. })
        ));
    }

    #[test]
    fn non_monotone_power_rejected() {
        // Raise a middle level's voltage above its successor's: power at
        // the next level no longer rises.
        let mut s = nexus4();
        s.clusters[0].opp[5].volts = s.clusters[0].opp[11].volts + 0.2;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::NonMonotoneOppPower { .. })
        ));
    }

    #[test]
    fn non_positive_capacitance_rejected() {
        let mut s = nexus4();
        s.thermal.nodes[3].capacitance = 0.0;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidParameter {
                name: "thermal.capacitance",
                ..
            })
        ));
    }

    #[test]
    fn non_positive_conductance_rejected() {
        let mut s = nexus4();
        s.thermal.couplings[0].2 = -0.1;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidParameter {
                name: "thermal.coupling",
                ..
            })
        ));

        let mut s = nexus4();
        s.thermal.ambient_links.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn gpu_idle_above_max_rejected() {
        let mut s = nexus4();
        s.gpu_power.idle_w = s.gpu_power.max_w + 1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn derived_summaries() {
        let s = nexus4();
        assert_eq!(s.domains(), 1);
        assert_eq!(s.cores(), 4);
        assert_eq!(s.topology(), "4");
        assert_eq!(s.min_khz(), 384_000);
        assert_eq!(s.max_khz(), 1_512_000);
        assert!((s.clusters[0].opp[0].mhz() - 384.0).abs() < 1e-9);
        assert!(s.thermal_mass_j_per_k() > 100.0);
        // Dynamic power rises strictly across the whole table.
        let c = &s.clusters[0];
        for i in 1..c.opp.len() {
            assert!(c.opp_dynamic_power_w(i) > c.opp_dynamic_power_w(i - 1));
        }
        assert!(c.full_load_w() > 2.0 && c.full_load_w() < 6.0);
    }

    #[test]
    fn flagship_summaries_span_both_clusters() {
        let s = flagship_octa();
        assert_eq!(s.domains(), 2);
        assert_eq!(s.cores(), 8);
        assert_eq!(s.topology(), "4+4");
        assert_eq!(s.max_khz(), s.clusters[0].max_khz());
        assert_eq!(s.min_khz(), s.clusters[1].min_khz());
        assert!(
            s.clusters[0].full_load_w() > 2.0 * s.clusters[1].full_load_w(),
            "the big cluster dominates the power budget"
        );
    }
}
