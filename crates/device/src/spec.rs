//! The device spec: everything needed to instantiate one device model.
//!
//! A [`DeviceSpec`] is plain data — no behaviour beyond validation and
//! a few derived summaries. `usta-soc` turns the SoC-side fields into
//! live models (`usta_soc::spec`), and `usta-sim` builds whole devices
//! from a spec; the thermal side is carried directly as
//! [`usta_thermal::PhoneThermalParams`].

use crate::error::DeviceError;
use usta_thermal::materials::Material;
use usta_thermal::PhoneThermalParams;

/// One CPU operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OppPoint {
    /// Core clock, kHz (cpufreq convention; 1 512 000 kHz = 1512 MHz).
    pub khz: u32,
    /// Supply voltage at this point, volts.
    pub volts: f64,
}

impl OppPoint {
    /// Frequency in MHz.
    pub fn mhz(&self) -> f64 {
        self.khz as f64 / 1e3
    }
}

/// CPU power coefficients (per core, one shared voltage/frequency
/// domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerSpec {
    /// Effective switched capacitance per core, farads.
    pub ceff_farads: f64,
    /// Leakage current coefficient at 25 °C, amperes.
    pub leak_coeff_a: f64,
    /// Fractional leakage growth per kelvin above 25 °C.
    pub leak_temp_per_k: f64,
    /// Constant uncore/interconnect power while the cluster is online,
    /// watts.
    pub idle_uncore_w: f64,
}

/// GPU power model: load-proportional with an idle floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPowerSpec {
    /// Full-load power, watts.
    pub max_w: f64,
    /// Idle power, watts.
    pub idle_w: f64,
}

/// Display panel power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplaySpec {
    /// Panel + driver power at zero backlight, watts.
    pub base_w: f64,
    /// Additional power at full brightness, watts.
    pub full_brightness_w: f64,
}

/// Battery pack description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatterySpec {
    /// Pack capacity, mAh.
    pub capacity_mah: f64,
    /// Nominal pack voltage, volts.
    pub nominal_v: f64,
    /// Internal resistance, ohms.
    pub internal_ohm: f64,
    /// Maximum charge current, amperes.
    pub max_charge_a: f64,
    /// Fraction of charging power lost as heat in the pack/PMIC, 0–1.
    pub charge_loss_fraction: f64,
}

/// A complete device description.
///
/// Field units are stated per field; the thermal network uses J/K for
/// node capacitances and W/K for conductances (see
/// [`PhoneThermalParams`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Stable registry/CLI id, lower-case `[a-z0-9-]` (e.g. `"nexus4"`).
    pub id: &'static str,
    /// Human-readable description for reports and `--help` text.
    pub description: &'static str,
    /// Number of CPU cores sharing the one modelled frequency domain.
    /// big.LITTLE parts are folded into a single shared-table domain
    /// (the simulator models one cpufreq policy).
    pub cores: usize,
    /// The OPP table, lowest frequency first. Frequencies in kHz,
    /// voltages in volts; both must rise monotonically (frequency
    /// strictly).
    pub opp: Vec<OppPoint>,
    /// CPU power coefficients (watts-producing; see [`CpuPowerSpec`]).
    pub cpu_power: CpuPowerSpec,
    /// GPU power model, watts.
    pub gpu_power: GpuPowerSpec,
    /// Display power model, watts.
    pub display: DisplaySpec,
    /// Battery pack (mAh, V, Ω, A).
    pub battery: BatterySpec,
    /// Back-cover material — what the user's palm actually touches.
    /// Informational: the material's thermal contribution is already
    /// folded into `thermal` (the back-cover node capacitances and
    /// ambient conductances); changing this field alone does not
    /// change simulation results.
    pub back_cover: Material,
    /// Seven-node thermal RC network: node heat capacities in J/K,
    /// coupling and ambient conductances in W/K.
    pub thermal: PhoneThermalParams,
}

impl DeviceSpec {
    /// Full-utilization dynamic power of one core at OPP `index`, watts
    /// (`C_eff · V² · f`). This is the quantity required to rise
    /// strictly with the level index.
    pub fn opp_dynamic_power_w(&self, index: usize) -> f64 {
        let p = self.opp[index];
        self.cpu_power.ceff_farads * p.volts * p.volts * (p.khz as f64 * 1e3)
    }

    /// Lowest OPP frequency, kHz.
    pub fn min_khz(&self) -> u32 {
        self.opp.first().map_or(0, |p| p.khz)
    }

    /// Highest OPP frequency, kHz.
    pub fn max_khz(&self) -> u32 {
        self.opp.last().map_or(0, |p| p.khz)
    }

    /// Total heat capacity of the thermal network, J/K — the "thermal
    /// mass" column of the catalog table.
    pub fn thermal_mass_j_per_k(&self) -> f64 {
        self.thermal.total_capacitance()
    }

    /// Validates the spec.
    ///
    /// Checks, in order: the id alphabet, core count, OPP monotonicity
    /// (frequency strictly increasing, voltage non-decreasing, dynamic
    /// power strictly increasing), power-model coefficient ranges, and
    /// positivity of every thermal capacitance and conductance.
    ///
    /// # Errors
    ///
    /// Returns the first [`DeviceError`] found.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.id.is_empty()
            || !self
                .id
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            return Err(DeviceError::InvalidId(self.id.to_owned()));
        }
        if self.cores == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "cores",
                value: 0.0,
            });
        }
        self.validate_opp()?;
        self.validate_power_models()?;
        self.validate_thermal()
    }

    fn validate_opp(&self) -> Result<(), DeviceError> {
        if self.opp.is_empty() {
            return Err(DeviceError::EmptyOppTable);
        }
        for (i, p) in self.opp.iter().enumerate() {
            if p.khz == 0 {
                return Err(DeviceError::InvalidParameter {
                    name: "opp.khz",
                    value: 0.0,
                });
            }
            if !p.volts.is_finite() || p.volts <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "opp.volts",
                    value: p.volts,
                });
            }
            if i > 0 {
                if self.opp[i - 1].khz >= p.khz {
                    return Err(DeviceError::NonMonotoneOppFrequency { index: i });
                }
                if self.opp[i - 1].volts > p.volts {
                    return Err(DeviceError::NonMonotoneOppPower { index: i });
                }
                if self.opp_dynamic_power_w(i - 1) >= self.opp_dynamic_power_w(i) {
                    return Err(DeviceError::NonMonotoneOppPower { index: i });
                }
            }
        }
        Ok(())
    }

    fn validate_power_models(&self) -> Result<(), DeviceError> {
        let nonneg = |name: &'static str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter { name, value: v })
            }
        };
        let pos = |name: &'static str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter { name, value: v })
            }
        };
        pos("cpu_power.ceff_farads", self.cpu_power.ceff_farads)?;
        nonneg("cpu_power.leak_coeff_a", self.cpu_power.leak_coeff_a)?;
        nonneg("cpu_power.leak_temp_per_k", self.cpu_power.leak_temp_per_k)?;
        nonneg("cpu_power.idle_uncore_w", self.cpu_power.idle_uncore_w)?;
        pos("gpu_power.max_w", self.gpu_power.max_w)?;
        nonneg("gpu_power.idle_w", self.gpu_power.idle_w)?;
        if self.gpu_power.idle_w > self.gpu_power.max_w {
            return Err(DeviceError::InvalidParameter {
                name: "gpu_power.idle_w",
                value: self.gpu_power.idle_w,
            });
        }
        nonneg("display.base_w", self.display.base_w)?;
        nonneg("display.full_brightness_w", self.display.full_brightness_w)?;
        pos("battery.capacity_mah", self.battery.capacity_mah)?;
        pos("battery.nominal_v", self.battery.nominal_v)?;
        nonneg("battery.internal_ohm", self.battery.internal_ohm)?;
        pos("battery.max_charge_a", self.battery.max_charge_a)?;
        if !(0.0..=1.0).contains(&self.battery.charge_loss_fraction) {
            return Err(DeviceError::InvalidParameter {
                name: "battery.charge_loss_fraction",
                value: self.battery.charge_loss_fraction,
            });
        }
        Ok(())
    }

    fn validate_thermal(&self) -> Result<(), DeviceError> {
        for &c in &self.thermal.capacitance {
            if !c.is_finite() || c <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "thermal.capacitance",
                    value: c,
                });
            }
        }
        for &(_, _, g) in &self.thermal.couplings {
            if !g.is_finite() || g <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "thermal.coupling",
                    value: g,
                });
            }
        }
        if self.thermal.ambient_links.is_empty() {
            // Without any path to ambient, the steady state is singular
            // and the device would heat without bound.
            return Err(DeviceError::InvalidParameter {
                name: "thermal.ambient_links",
                value: 0.0,
            });
        }
        for &(_, g) in &self.thermal.ambient_links {
            if !g.is_finite() || g <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "thermal.ambient_link",
                    value: g,
                });
            }
        }
        for (name, v) in [
            ("thermal.ambient", self.thermal.ambient.value()),
            ("thermal.initial", self.thermal.initial.value()),
        ] {
            if !v.is_finite() {
                return Err(DeviceError::InvalidParameter { name, value: v });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::nexus4;

    #[test]
    fn nexus4_spec_validates() {
        assert_eq!(nexus4().validate(), Ok(()));
    }

    #[test]
    fn bad_ids_are_rejected() {
        for bad in ["", "Nexus4", "nexus 4", "nexus_4", "nexus/4"] {
            let mut s = nexus4();
            s.id = Box::leak(bad.to_owned().into_boxed_str());
            assert!(
                matches!(s.validate(), Err(DeviceError::InvalidId(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn zero_cores_rejected() {
        let mut s = nexus4();
        s.cores = 0;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidParameter { name: "cores", .. })
        ));
    }

    #[test]
    fn empty_and_unsorted_opp_rejected() {
        let mut s = nexus4();
        s.opp.clear();
        assert_eq!(s.validate(), Err(DeviceError::EmptyOppTable));

        let mut s = nexus4();
        s.opp.swap(0, 1);
        assert!(matches!(
            s.validate(),
            Err(DeviceError::NonMonotoneOppFrequency { .. })
        ));
    }

    #[test]
    fn non_monotone_power_rejected() {
        // Raise a middle level's voltage above its successor's: power at
        // the next level no longer rises.
        let mut s = nexus4();
        s.opp[5].volts = s.opp[11].volts + 0.2;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::NonMonotoneOppPower { .. })
        ));
    }

    #[test]
    fn non_positive_capacitance_rejected() {
        let mut s = nexus4();
        s.thermal.capacitance[3] = 0.0;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidParameter {
                name: "thermal.capacitance",
                ..
            })
        ));
    }

    #[test]
    fn non_positive_conductance_rejected() {
        let mut s = nexus4();
        s.thermal.couplings[0].2 = -0.1;
        assert!(matches!(
            s.validate(),
            Err(DeviceError::InvalidParameter {
                name: "thermal.coupling",
                ..
            })
        ));

        let mut s = nexus4();
        s.thermal.ambient_links.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn gpu_idle_above_max_rejected() {
        let mut s = nexus4();
        s.gpu_power.idle_w = s.gpu_power.max_w + 1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn derived_summaries() {
        let s = nexus4();
        assert_eq!(s.min_khz(), 384_000);
        assert_eq!(s.max_khz(), 1_512_000);
        assert!((s.opp[0].mhz() - 384.0).abs() < 1e-9);
        assert!(s.thermal_mass_j_per_k() > 100.0);
        // Dynamic power rises strictly across the whole table.
        for i in 1..s.opp.len() {
            assert!(s.opp_dynamic_power_w(i) > s.opp_dynamic_power_w(i - 1));
        }
    }
}
