//! The thermal side of a device spec: a declarative, validated RC
//! topology with **one die node per CPU cluster**.
//!
//! The historical spec carried `usta_thermal::PhoneThermalParams` — a
//! fixed seven-node network whose single `cpu` node absorbed every
//! cluster's power, so a big.LITTLE part's clusters were thermally
//! indistinguishable. [`ThermalSpec`] replaces it with named nodes,
//! by-name conductance edges, and explicit role designations (die
//! nodes big-first, skin, screen, exterior back nodes). Validation at
//! registry construction guarantees positive capacitances and
//! conductances, resolvable names, one die node per declared cluster,
//! and a connected graph (every node has a path to ambient);
//! [`ThermalSpec::topology`] lowers the validated spec into the
//! index-based [`usta_thermal::ThermalTopology`] the simulator runs.

use crate::error::DeviceError;
use usta_thermal::{Celsius, HandContact, NodeRoles, ThermalNode, ThermalTopology};

/// One named node of the thermal network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalNodeSpec {
    /// Node name, lower-case `[a-z0-9_-]` — becomes the network node
    /// name, step-trace `temp_c_<node>` columns, and fleet
    /// `temp [C] <device>/<node>` report rows.
    pub name: &'static str,
    /// Heat capacity, J/K.
    pub capacitance: f64,
}

/// The declarative thermal network of one device.
///
/// All capacitances in J/K, conductances in W/K. Edges and role
/// designations reference nodes **by name**; [`ThermalSpec::validate`]
/// checks resolvability so [`ThermalSpec::topology`] cannot fail on a
/// registry spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalSpec {
    /// The nodes, in network order.
    pub nodes: Vec<ThermalNodeSpec>,
    /// Internal couplings `(a, b, conductance)` by node name.
    pub couplings: Vec<(&'static str, &'static str, f64)>,
    /// Ambient links `(node, conductance)` by node name.
    pub ambient_links: Vec<(&'static str, f64)>,
    /// One CPU die node per cluster, in the spec's big-first cluster
    /// order — cluster `d`'s power heats `die_nodes[d]`.
    pub die_nodes: Vec<&'static str>,
    /// SoC package node (GPU heat, unless [`ThermalSpec::gpu_node`]
    /// routes it elsewhere).
    pub package_node: &'static str,
    /// Dedicated GPU die node, when the device gives the GPU its own
    /// RC node — GPU heat lands here instead of on the package.
    pub gpu_node: Option<&'static str>,
    /// Main-board node (radios, ISP, PMIC heat).
    pub board_node: &'static str,
    /// Battery pack node (charge/discharge losses).
    pub battery_node: &'static str,
    /// Screen node: display heat, and the paper's **screen
    /// temperature** designation.
    pub screen_node: &'static str,
    /// The paper's **skin temperature** designation: the node the
    /// user's palm touches (and the hand model attaches to).
    pub skin_node: &'static str,
    /// Exterior back-cover nodes — what scenario layers (cases) add
    /// mass to and whose ambient links they scale.
    pub back_nodes: Vec<&'static str>,
    /// Ambient (room) temperature.
    pub ambient: Celsius,
    /// Initial temperature of every node.
    pub initial: Celsius,
    /// Hand model used when contact is enabled.
    pub hand: HandContact,
}

impl ThermalSpec {
    /// Index of a node by name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Total heat capacity, J/K — the catalog table's "thermal mass".
    pub fn total_capacitance(&self) -> f64 {
        self.nodes.iter().map(|n| n.capacitance).sum()
    }

    /// Sum of all ambient conductances, W/K.
    pub fn total_ambient_conductance(&self) -> f64 {
        self.ambient_links.iter().map(|&(_, g)| g).sum()
    }

    /// Lowers the spec into the index-based runtime topology.
    ///
    /// # Panics
    ///
    /// Panics if an edge or designation references an undeclared node —
    /// impossible for a spec that passed [`ThermalSpec::validate`]
    /// (which every registry spec has).
    pub fn topology(&self) -> ThermalTopology {
        let index = |name: &str| {
            self.node_index(name)
                .unwrap_or_else(|| panic!("thermal node {name:?} not declared (unvalidated spec)"))
        };
        ThermalTopology {
            nodes: self
                .nodes
                .iter()
                .map(|n| ThermalNode {
                    name: n.name.to_owned(),
                    capacitance: n.capacitance,
                })
                .collect(),
            couplings: self
                .couplings
                .iter()
                .map(|&(a, b, g)| (index(a), index(b), g))
                .collect(),
            ambient_links: self
                .ambient_links
                .iter()
                .map(|&(n, g)| (index(n), g))
                .collect(),
            ambient: self.ambient,
            initial: self.initial,
            hand: self.hand,
            roles: NodeRoles {
                dies: self.die_nodes.iter().map(|&n| index(n)).collect(),
                package: index(self.package_node),
                gpu: self.gpu_node.map(index),
                board: index(self.board_node),
                battery: index(self.battery_node),
                screen: index(self.screen_node),
                skin: index(self.skin_node),
                back: self.back_nodes.iter().map(|&n| index(n)).collect(),
            },
        }
    }

    /// Validates the spec against the device's cluster count.
    ///
    /// Checks, in order: node-name alphabet and uniqueness, positive
    /// finite capacitances, coupling shape (known ends, no self or
    /// duplicate edges, positive conductance), ambient links (at least
    /// one, known nodes, positive conductance), die designations (one
    /// per cluster, known, distinct), the remaining role designations
    /// (known; at least one back node), graph connectivity (every node
    /// reaches ambient), finite temperatures, and the hand model's
    /// ranges.
    ///
    /// # Errors
    ///
    /// Returns the first [`DeviceError`] found.
    pub fn validate(&self, clusters: usize) -> Result<(), DeviceError> {
        self.validate_nodes()?;
        self.validate_edges()?;
        self.validate_roles(clusters)?;
        self.validate_connectivity()?;
        self.validate_scalars()
    }

    fn validate_nodes(&self) -> Result<(), DeviceError> {
        if self.nodes.is_empty() {
            return Err(DeviceError::InvalidParameter {
                name: "thermal.nodes",
                value: 0.0,
            });
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !valid_node_name(node.name) {
                return Err(DeviceError::InvalidThermalNodeName(node.name.to_owned()));
            }
            if self.nodes[..i].iter().any(|n| n.name == node.name) {
                return Err(DeviceError::DuplicateThermalNode(node.name.to_owned()));
            }
            if !node.capacitance.is_finite() || node.capacitance <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "thermal.capacitance",
                    value: node.capacitance,
                });
            }
        }
        Ok(())
    }

    fn validate_edges(&self) -> Result<(), DeviceError> {
        let known = |name: &'static str| -> Result<(), DeviceError> {
            if self.node_index(name).is_none() {
                return Err(DeviceError::UnknownThermalNode(name.to_owned()));
            }
            Ok(())
        };
        for (i, &(a, b, g)) in self.couplings.iter().enumerate() {
            known(a)?;
            known(b)?;
            if a == b {
                return Err(DeviceError::InvalidThermalCoupling(format!(
                    "{a}\u{2014}{b}: node coupled to itself"
                )));
            }
            if self.couplings[..i]
                .iter()
                .any(|&(x, y, _)| (x == a && y == b) || (x == b && y == a))
            {
                return Err(DeviceError::InvalidThermalCoupling(format!(
                    "{a}\u{2014}{b}: pair coupled twice"
                )));
            }
            if !g.is_finite() || g <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "thermal.coupling",
                    value: g,
                });
            }
        }
        if self.ambient_links.is_empty() {
            // Without any path to ambient, the steady state is singular
            // and the device would heat without bound.
            return Err(DeviceError::InvalidParameter {
                name: "thermal.ambient_links",
                value: 0.0,
            });
        }
        for &(n, g) in &self.ambient_links {
            known(n)?;
            if !g.is_finite() || g <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name: "thermal.ambient_link",
                    value: g,
                });
            }
        }
        Ok(())
    }

    fn validate_roles(&self, clusters: usize) -> Result<(), DeviceError> {
        if self.die_nodes.len() != clusters {
            return Err(DeviceError::DieNodeMismatch {
                die_nodes: self.die_nodes.len(),
                clusters,
            });
        }
        for (i, &die) in self.die_nodes.iter().enumerate() {
            if self.node_index(die).is_none() {
                return Err(DeviceError::UnknownThermalNode(die.to_owned()));
            }
            if self.die_nodes[..i].contains(&die) {
                return Err(DeviceError::DuplicateThermalNode(die.to_owned()));
            }
        }
        for name in [
            self.package_node,
            self.board_node,
            self.battery_node,
            self.screen_node,
            self.skin_node,
        ]
        .into_iter()
        .chain(self.gpu_node)
        {
            if self.node_index(name).is_none() {
                return Err(DeviceError::UnknownThermalNode(name.to_owned()));
            }
        }
        if self.back_nodes.is_empty() {
            return Err(DeviceError::InvalidParameter {
                name: "thermal.back_nodes",
                value: 0.0,
            });
        }
        for &name in &self.back_nodes {
            if self.node_index(name).is_none() {
                return Err(DeviceError::UnknownThermalNode(name.to_owned()));
            }
        }
        Ok(())
    }

    /// Every node must reach ambient through the coupling graph —
    /// otherwise its steady state is unbounded under any sustained
    /// power. BFS from the ambient-linked seed set across couplings.
    fn validate_connectivity(&self) -> Result<(), DeviceError> {
        let n = self.nodes.len();
        let mut reached = vec![false; n];
        let mut frontier: Vec<usize> = Vec::new();
        for &(name, _) in &self.ambient_links {
            let i = self.node_index(name).expect("links validated");
            if !reached[i] {
                reached[i] = true;
                frontier.push(i);
            }
        }
        while let Some(i) = frontier.pop() {
            for &(a, b, _) in &self.couplings {
                let (ia, ib) = (
                    self.node_index(a).expect("couplings validated"),
                    self.node_index(b).expect("couplings validated"),
                );
                let next = if ia == i {
                    ib
                } else if ib == i {
                    ia
                } else {
                    continue;
                };
                if !reached[next] {
                    reached[next] = true;
                    frontier.push(next);
                }
            }
        }
        if let Some(i) = reached.iter().position(|&r| !r) {
            return Err(DeviceError::DisconnectedThermalNode(
                self.nodes[i].name.to_owned(),
            ));
        }
        Ok(())
    }

    fn validate_scalars(&self) -> Result<(), DeviceError> {
        for (name, v) in [
            ("thermal.ambient", self.ambient.value()),
            ("thermal.initial", self.initial.value()),
            ("thermal.hand.palm", self.hand.palm_temperature.value()),
        ] {
            if !v.is_finite() {
                return Err(DeviceError::InvalidParameter { name, value: v });
            }
        }
        if !self.hand.contact_conductance.is_finite() || self.hand.contact_conductance < 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "thermal.hand.contact_conductance",
                value: self.hand.contact_conductance,
            });
        }
        if !(0.0..=1.0).contains(&self.hand.blocked_fraction) {
            return Err(DeviceError::InvalidParameter {
                name: "thermal.hand.blocked_fraction",
                value: self.hand.blocked_fraction,
            });
        }
        Ok(())
    }
}

/// Node names become network names, trace columns, and report rows, so
/// they share the id alphabet plus `_` (the historical node names
/// `back_mid`/`back_upper` predate the catalog).
fn valid_node_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{flagship_octa, nexus4};
    use usta_thermal::PhoneThermalParams;

    #[test]
    fn nexus4_thermal_spec_reconstructs_the_calibrated_default_exactly() {
        // The migration contract: the declarative spec lowers to the
        // very topology the seed's hardwired params produce.
        assert_eq!(
            nexus4().thermal.topology(),
            PhoneThermalParams::default().topology()
        );
    }

    #[test]
    fn validation_catches_unknown_names() {
        let mut s = nexus4().thermal;
        s.couplings[0].0 = "die";
        assert_eq!(
            s.validate(1),
            Err(DeviceError::UnknownThermalNode("die".to_owned()))
        );

        let mut s = nexus4().thermal;
        s.skin_node = "palm";
        assert_eq!(
            s.validate(1),
            Err(DeviceError::UnknownThermalNode("palm".to_owned()))
        );

        let mut s = nexus4().thermal;
        s.die_nodes = vec!["hotspot"];
        assert_eq!(
            s.validate(1),
            Err(DeviceError::UnknownThermalNode("hotspot".to_owned()))
        );
    }

    #[test]
    fn validation_requires_one_die_node_per_cluster() {
        let s = nexus4().thermal;
        assert_eq!(
            s.validate(2),
            Err(DeviceError::DieNodeMismatch {
                die_nodes: 1,
                clusters: 2
            })
        );
        let mut two = flagship_octa().thermal;
        two.die_nodes.pop();
        assert_eq!(
            two.validate(2),
            Err(DeviceError::DieNodeMismatch {
                die_nodes: 1,
                clusters: 2
            })
        );
    }

    #[test]
    fn duplicate_die_designations_are_rejected() {
        let mut s = flagship_octa().thermal;
        s.die_nodes[1] = s.die_nodes[0];
        assert_eq!(
            s.validate(2),
            Err(DeviceError::DuplicateThermalNode("die_big".to_owned()))
        );
    }

    #[test]
    fn bad_node_names_and_duplicates_are_rejected() {
        let mut s = nexus4().thermal;
        s.nodes[0].name = "CPU";
        assert_eq!(
            s.validate(1),
            Err(DeviceError::InvalidThermalNodeName("CPU".to_owned()))
        );

        let mut s = nexus4().thermal;
        s.nodes[1].name = s.nodes[0].name;
        assert!(matches!(
            s.validate(1),
            Err(DeviceError::DuplicateThermalNode(_))
        ));
    }

    #[test]
    fn self_and_duplicate_couplings_are_rejected() {
        let mut s = nexus4().thermal;
        s.couplings.push(("board", "board", 0.5));
        assert!(matches!(
            s.validate(1),
            Err(DeviceError::InvalidThermalCoupling(ref m)) if m.contains("itself")
        ));

        let mut s = nexus4().thermal;
        let (a, b, g) = s.couplings[0];
        s.couplings.push((b, a, g));
        assert!(matches!(
            s.validate(1),
            Err(DeviceError::InvalidThermalCoupling(ref m)) if m.contains("twice")
        ));
    }

    #[test]
    fn disconnected_nodes_are_rejected() {
        let mut s = nexus4().thermal;
        s.nodes.push(ThermalNodeSpec {
            name: "camera",
            capacitance: 2.0,
        });
        assert_eq!(
            s.validate(1),
            Err(DeviceError::DisconnectedThermalNode("camera".to_owned()))
        );
        // Coupling it into the network fixes the rejection.
        s.couplings.push(("camera", "board", 0.2));
        assert_eq!(s.validate(1), Ok(()));
    }

    #[test]
    fn non_positive_parameters_are_rejected() {
        let mut s = nexus4().thermal;
        s.nodes[3].capacitance = 0.0;
        assert!(matches!(
            s.validate(1),
            Err(DeviceError::InvalidParameter {
                name: "thermal.capacitance",
                ..
            })
        ));

        let mut s = nexus4().thermal;
        s.couplings[0].2 = -0.1;
        assert!(matches!(
            s.validate(1),
            Err(DeviceError::InvalidParameter {
                name: "thermal.coupling",
                ..
            })
        ));

        let mut s = nexus4().thermal;
        s.ambient_links.clear();
        assert!(s.validate(1).is_err());

        let mut s = nexus4().thermal;
        s.hand.blocked_fraction = 1.5;
        assert!(matches!(
            s.validate(1),
            Err(DeviceError::InvalidParameter {
                name: "thermal.hand.blocked_fraction",
                ..
            })
        ));
    }

    #[test]
    fn summaries_and_lookups() {
        let s = nexus4().thermal;
        assert_eq!(s.node_index("cpu"), Some(0));
        assert_eq!(s.node_index("screen"), Some(6));
        assert_eq!(s.node_index("palm"), None);
        assert!(s.total_capacitance() > 100.0);
        assert!(s.total_ambient_conductance() > 0.2);
    }
}
